package mpi

import (
	"fmt"
	"sort"

	"repro/internal/gpu"
	"repro/internal/sim"
)

// Collective algorithms built on the point-to-point layer, following the
// classic MPICH selection: binomial trees for short broadcast/reduce,
// recursive doubling for short allreduce, ring algorithms for long vectors,
// dissemination for barrier, and pairwise exchange for all-to-all.
//
// Every rank of a communicator must call the same collectives in the same
// order, each from its own simulated process.

// collRoundBits is the width of the per-collective round field in reserved
// tags; collWindow bounds how much of the collective sequence is folded in.
// The sequence is reduced modulo collWindow so tags never overflow (the old
// unbounded shift wrapped after 2^55 collectives on 64-bit int, far sooner
// on 32-bit): the largest reserved tag is
// maxUserTag + (collWindow-1)<<collRoundBits + collRounds-1 < 2^31, which
// fits a 32-bit int. Reusing a tag 2^20 collectives later is safe because
// per-pair sequence admission keeps matching FIFO and far fewer collectives
// are ever concurrently outstanding.
const (
	collRoundBits = 10
	collRounds    = 1 << collRoundBits
	collWindow    = 1 << 20
)

// collTag returns a reserved tag for one round of one collective call.
func (c *Comm) collTag(round int) int {
	if round < 0 || round >= collRounds {
		panic(fmt.Sprintf("mpi: collective round %d outside [0, %d)", round, collRounds))
	}
	return maxUserTag + int(c.coll%collWindow)<<collRoundBits + round
}

// stagingPenalty charges the host-bounce-buffer cost of the MPI
// implementation's vector collectives on device buffers (down and up once
// each at the staging bandwidth).
func (c *Comm) stagingPenalty(p *sim.Proc, vectorBytes int64) {
	bw := c.profile().CollStagingBW
	if bw <= 0 || vectorBytes <= 0 {
		return
	}
	p.Advance(sim.Duration(2 * float64(vectorBytes) / bw * float64(sim.Second)))
}

// enterColl advances the per-handle collective sequence and returns the
// sequence valid for this call.
func (c *Comm) enterColl() {
	c.coll++
}

// Barrier blocks until every rank of the communicator has entered it
// (dissemination algorithm: ceil(log2 n) zero-byte rounds).
func (c *Comm) Barrier(p *sim.Proc) {
	defer timeColl(p, c.ep.world.mColl.barrier)()
	c.enterColl()
	n := c.Size()
	if n == 1 {
		return
	}
	me := c.rank
	for round, dist := 0, 1; dist < n; round, dist = round+1, dist*2 {
		dst := (me + dist) % n
		src := (me - dist + n) % n
		c.Sendrecv(p, gpu.View{}, dst, c.collTag(round), gpu.View{}, src, c.collTag(round))
	}
}

// Bcast broadcasts root's buf to every rank (binomial tree).
func (c *Comm) Bcast(p *sim.Proc, buf gpu.View, root int) {
	defer timeColl(p, c.ep.world.mColl.bcast)()
	c.enterColl()
	n := c.Size()
	if n == 1 {
		return
	}
	// Re-index so the root is virtual rank 0.
	vrank := (c.rank - root + n) % n
	mask := 1
	for mask < n {
		mask <<= 1
	}
	// Receive once from the parent, then forward down the tree.
	recvMask := 1
	for vrank != 0 && vrank&recvMask == 0 {
		recvMask <<= 1
	}
	if vrank != 0 {
		parent := ((vrank &^ recvMask) + root) % n
		c.Recv(p, buf, parent, c.collTag(0))
	}
	childMask := recvMask >> 1
	if vrank == 0 {
		childMask = mask >> 1
	}
	for ; childMask > 0; childMask >>= 1 {
		child := vrank | childMask
		if child < n && child != vrank {
			c.Send(p, buf, (child+root)%n, c.collTag(0))
		}
	}
}

// Reduce combines sendBuf from all ranks into recvBuf on root (binomial
// tree). recvBuf may be the zero view on non-root ranks. sendBuf and
// recvBuf must not alias.
func (c *Comm) Reduce(p *sim.Proc, sendBuf, recvBuf gpu.View, op gpu.ReduceOp, root int) {
	defer timeColl(p, c.ep.world.mColl.reduce)()
	c.enterColl()
	n := c.Size()
	count := sendBuf.Len()
	acc := sendBuf.Clone()
	if n > 1 {
		vrank := (c.rank - root + n) % n
		mask := 1
		for mask < n {
			if vrank&mask != 0 {
				parent := ((vrank &^ mask) + root) % n
				c.Send(p, acc, parent, c.collTag(bitsOf(mask)))
				break
			}
			peer := vrank | mask
			if peer < n {
				tmp := acc.Clone()
				c.Recv(p, tmp, (peer+root)%n, c.collTag(bitsOf(mask)))
				gpu.Reduce(acc, tmp, count, op)
				tmp.Release()
			}
			mask <<= 1
		}
	}
	if c.rank == root {
		gpu.Copy(recvBuf, acc, count)
	}
	acc.Release()
}

func bitsOf(mask int) int {
	b := 0
	for mask > 1 {
		mask >>= 1
		b++
	}
	return b
}

// allreduceRingMin is the vector byte size above which Allreduce switches
// from recursive doubling to the ring algorithm.
const allreduceRingMin = 64 << 10

// Allreduce combines sendBuf from all ranks elementwise into recvBuf on all
// ranks. In-place operation is allowed (sendBuf == recvBuf).
func (c *Comm) Allreduce(p *sim.Proc, sendBuf, recvBuf gpu.View, op gpu.ReduceOp) {
	defer timeColl(p, c.ep.world.mColl.allreduce)()
	c.enterColl()
	n := c.Size()
	count := sendBuf.Len()
	if !sendBuf.SameBuffer(recvBuf) || sendBuf.Offset() != recvBuf.Offset() {
		gpu.Copy(recvBuf, sendBuf, count)
	}
	if n == 1 {
		return
	}
	if sendBuf.Bytes() >= allreduceRingMin && count >= n {
		c.allreduceRing(p, recvBuf, op)
		return
	}
	c.allreduceRecursiveDoubling(p, recvBuf, op)
}

// allreduceRecursiveDoubling handles any rank count by folding the ranks
// beyond the largest power of two into their lower partners first.
func (c *Comm) allreduceRecursiveDoubling(p *sim.Proc, buf gpu.View, op gpu.ReduceOp) {
	n := c.Size()
	count := buf.Len()
	pof2 := 1
	for pof2*2 <= n {
		pof2 *= 2
	}
	rem := n - pof2
	me := c.rank
	tmp := buf.Clone()

	// Fold phase: ranks >= pof2 send to (rank - rem) and sit out.
	newRank := -1
	switch {
	case me < rem*2 && me%2 != 0: // odd ranks in the doubled region send
		c.Send(p, buf, me-1, c.collTag(200))
	case me < rem*2: // even ranks in the doubled region absorb
		c.Recv(p, tmp, me+1, c.collTag(200))
		gpu.Reduce(buf, tmp, count, op)
		newRank = me / 2
	default:
		newRank = me - rem
	}

	if newRank >= 0 {
		for round, mask := 0, 1; mask < pof2; round, mask = round+1, mask*2 {
			peerNew := newRank ^ mask
			var peer int
			if peerNew < rem {
				peer = peerNew * 2
			} else {
				peer = peerNew + rem
			}
			c.Sendrecv(p, buf, peer, c.collTag(round),
				tmp, peer, c.collTag(round))
			gpu.Reduce(buf, tmp, count, op)
		}
	}

	// Unfold: results back to the odd ranks that sat out.
	if me < rem*2 {
		if me%2 == 0 {
			c.Send(p, buf, me+1, c.collTag(201))
		} else {
			c.Recv(p, buf, me-1, c.collTag(201))
		}
	}
	tmp.Release()
}

// allreduceRing implements reduce-scatter + allgather over a ring; it needs
// count >= n.
func (c *Comm) allreduceRing(p *sim.Proc, buf gpu.View, op gpu.ReduceOp) {
	n := c.Size()
	count := buf.Len()
	me := c.rank
	right := (me + 1) % n
	left := (me - 1 + n) % n

	// Chunk boundaries: chunk i is [starts[i], starts[i+1]).
	starts := make([]int, n+1)
	for i := 0; i <= n; i++ {
		starts[i] = i * count / n
	}
	chunk := func(i int) gpu.View {
		i = (i%n + n) % n
		return buf.Slice(starts[i], starts[i+1]-starts[i])
	}
	tmp := buf.Clone()

	// Reduce-scatter: after n-1 steps rank r holds the full reduction of
	// chunk (r+1) mod n.
	for step := 0; step < n-1; step++ {
		sendIdx := me - step
		recvIdx := me - step - 1
		rv := chunk(recvIdx)
		tmpChunk := tmpSlice(tmp, buf, rv)
		c.Sendrecv(p, chunk(sendIdx), right, c.collTag(step),
			tmpChunk, left, c.collTag(step))
		gpu.Reduce(rv, tmpChunk, rv.Len(), op)
	}
	// Allgather: circulate the finished chunks.
	for step := 0; step < n-1; step++ {
		sendIdx := me + 1 - step
		recvIdx := me - step
		c.Sendrecv(p, chunk(sendIdx), right, c.collTag(100+step),
			chunk(recvIdx), left, c.collTag(100+step))
	}
	tmp.Release()
}

// tmpSlice returns the window of tmp that corresponds to the window rv of
// buf (tmp is a clone of buf, so offsets align relative to the view starts).
func tmpSlice(tmp, buf, rv gpu.View) gpu.View {
	return tmp.Slice(rv.Offset()-buf.Offset(), rv.Len())
}

// Gather collects equal-size contributions into recvBuf on root (recvBuf
// holds Size()*sendBuf.Len() elements there; ignored elsewhere).
func (c *Comm) Gather(p *sim.Proc, sendBuf, recvBuf gpu.View, root int) {
	counts := make([]int, c.Size())
	for i := range counts {
		counts[i] = sendBuf.Len()
	}
	c.Gatherv(p, sendBuf, recvBuf, counts, prefixSums(counts), root)
}

// Gatherv collects variable-size contributions into recvBuf on root at the
// given displacements (linear algorithm, as used for moderate sizes). Like
// Allgatherv it pays the device-buffer staging penalty at the root.
func (c *Comm) Gatherv(p *sim.Proc, sendBuf, recvBuf gpu.View, counts, displs []int, root int) {
	defer timeColl(p, c.ep.world.mColl.gather)()
	c.enterColl()
	if c.rank == root {
		c.stagingPenalty(p, recvBuf.Bytes())
	}
	n := c.Size()
	if c.rank == root {
		reqs := make([]*Request, 0, n-1)
		for r := 0; r < n; r++ {
			if r == root {
				gpu.Copy(recvBuf.Slice(displs[r], counts[r]), sendBuf, counts[r])
				continue
			}
			reqs = append(reqs, c.Irecv(p, recvBuf.Slice(displs[r], counts[r]), r, c.collTag(0)))
		}
		WaitAll(p, reqs...)
		return
	}
	c.Send(p, sendBuf, root, c.collTag(0))
}

// Scatter distributes equal-size chunks of sendBuf (significant at root)
// into each rank's recvBuf.
func (c *Comm) Scatter(p *sim.Proc, sendBuf, recvBuf gpu.View, root int) {
	counts := make([]int, c.Size())
	for i := range counts {
		counts[i] = recvBuf.Len()
	}
	c.Scatterv(p, sendBuf, recvBuf, counts, prefixSums(counts), root)
}

// Scatterv distributes variable-size chunks from root.
func (c *Comm) Scatterv(p *sim.Proc, sendBuf, recvBuf gpu.View, counts, displs []int, root int) {
	defer timeColl(p, c.ep.world.mColl.scatter)()
	c.enterColl()
	n := c.Size()
	if c.rank == root {
		reqs := make([]*Request, 0, n-1)
		for r := 0; r < n; r++ {
			if r == root {
				gpu.Copy(recvBuf, sendBuf.Slice(displs[r], counts[r]), counts[r])
				continue
			}
			reqs = append(reqs, c.Isend(p, sendBuf.Slice(displs[r], counts[r]), r, c.collTag(0)))
		}
		WaitAll(p, reqs...)
		return
	}
	c.Recv(p, recvBuf, root, c.collTag(0))
}

// Allgather concatenates equal-size contributions on every rank.
func (c *Comm) Allgather(p *sim.Proc, sendBuf, recvBuf gpu.View) {
	counts := make([]int, c.Size())
	for i := range counts {
		counts[i] = sendBuf.Len()
	}
	c.Allgatherv(p, sendBuf, recvBuf, counts, prefixSums(counts))
}

// Allgatherv concatenates variable-size contributions on every rank (ring
// algorithm: n-1 neighbour exchanges).
//
// Vector collectives on device buffers additionally pay the host-staging
// cost of the MPI implementation (LibProfile.CollStagingBW): the full
// result vector is bounced through pinned host memory. This reproduces the
// pathology the paper isolates in §VI-D, where the Allgatherv dominated the
// MPI CG runtime on both test systems.
func (c *Comm) Allgatherv(p *sim.Proc, sendBuf, recvBuf gpu.View, counts, displs []int) {
	defer timeColl(p, c.ep.world.mColl.allgather)()
	c.enterColl()
	c.stagingPenalty(p, recvBuf.Bytes())
	n := c.Size()
	me := c.rank
	gpu.Copy(recvBuf.Slice(displs[me], counts[me]), sendBuf, counts[me])
	if n == 1 {
		return
	}
	right := (me + 1) % n
	left := (me - 1 + n) % n
	for step := 0; step < n-1; step++ {
		sendIdx := (me - step + n) % n
		recvIdx := (me - step - 1 + n) % n
		c.Sendrecv(p,
			recvBuf.Slice(displs[sendIdx], counts[sendIdx]), right, c.collTag(step),
			recvBuf.Slice(displs[recvIdx], counts[recvIdx]), left, c.collTag(step))
	}
}

// Alltoall exchanges equal-size chunks between every rank pair (pairwise
// exchange, n-1 rounds).
func (c *Comm) Alltoall(p *sim.Proc, sendBuf, recvBuf gpu.View, count int) {
	defer timeColl(p, c.ep.world.mColl.alltoall)()
	c.enterColl()
	n := c.Size()
	me := c.rank
	gpu.Copy(recvBuf.Slice(me*count, count), sendBuf.Slice(me*count, count), count)
	for round := 1; round < n; round++ {
		dst := (me + round) % n
		src := (me - round + n) % n
		c.Sendrecv(p,
			sendBuf.Slice(dst*count, count), dst, c.collTag(round),
			recvBuf.Slice(src*count, count), src, c.collTag(round))
	}
}

// Alltoallv exchanges variable-size chunks between every rank pair
// (pairwise exchange). Like the other vector collectives it pays the
// device-buffer staging penalty.
func (c *Comm) Alltoallv(p *sim.Proc, sendBuf, recvBuf gpu.View, sendCounts, sendDispls, recvCounts, recvDispls []int) {
	defer timeColl(p, c.ep.world.mColl.alltoall)()
	c.enterColl()
	c.stagingPenalty(p, recvBuf.Bytes())
	n := c.Size()
	me := c.rank
	gpu.Copy(recvBuf.Slice(recvDispls[me], recvCounts[me]),
		sendBuf.Slice(sendDispls[me], sendCounts[me]), sendCounts[me])
	for round := 1; round < n; round++ {
		dst := (me + round) % n
		src := (me - round + n) % n
		c.Sendrecv(p,
			sendBuf.Slice(sendDispls[dst], sendCounts[dst]), dst, c.collTag(round),
			recvBuf.Slice(recvDispls[src], recvCounts[src]), src, c.collTag(round))
	}
}

func prefixSums(counts []int) []int {
	d := make([]int, len(counts))
	sum := 0
	for i, c := range counts {
		d[i] = sum
		sum += c
	}
	return d
}

// splitEntry is exchanged during Split.
type splitEntry struct {
	color, key, rank int
}

// Split partitions the communicator by color, ordering each new group by
// (key, old rank), like MPI_Comm_split. Every member must call it. A
// negative color returns nil (the rank joins no new communicator).
//
// Implementation note: ranks agree on the new groups via an Allgather of
// (color, key); the new context id is derived deterministically from the
// parent context and the per-handle collective sequence, which is identical
// on all ranks.
func (c *Comm) Split(p *sim.Proc, color, key int) *Comm {
	n := c.Size()
	entries := make([]splitEntry, n)
	// Exchange the (color, key) pairs through int64 buffers.
	send := gpu.AllocBuffer[int64](c.ep.dev, 2)
	send.Data()[0], send.Data()[1] = int64(color), int64(key)
	recv := gpu.AllocBuffer[int64](c.ep.dev, 2*n)
	c.Allgather(p, send.Whole(), recv.Whole())
	for r := 0; r < n; r++ {
		entries[r] = splitEntry{
			color: int(recv.Data()[2*r]),
			key:   int(recv.Data()[2*r+1]),
			rank:  r,
		}
	}
	newCtx := c.ctx*4096 + int(c.coll) + 1
	if color < 0 {
		return nil
	}
	var members []splitEntry
	for _, e := range entries {
		if e.color == color {
			members = append(members, e)
		}
	}
	sort.Slice(members, func(i, j int) bool {
		if members[i].key != members[j].key {
			return members[i].key < members[j].key
		}
		return members[i].rank < members[j].rank
	})
	group := make([]int, len(members))
	myNew := -1
	for i, e := range members {
		group[i] = c.group[e.rank]
		if e.rank == c.rank {
			myNew = i
		}
	}
	if myNew < 0 {
		panic(fmt.Sprintf("mpi: split lost rank %d", c.rank))
	}
	return &Comm{ep: c.ep, ctx: newCtx, group: group, rank: myNew}
}

// Dup duplicates the communicator with a fresh context id.
func (c *Comm) Dup(p *sim.Proc) *Comm {
	return c.Split(p, 0, c.rank)
}
