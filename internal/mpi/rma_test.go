package mpi

import (
	"testing"

	"repro/internal/gpu"
	"repro/internal/machine"
	"repro/internal/sim"
)

func TestRMAPutWithFence(t *testing.T) {
	runRanks(t, machine.Perlmutter(), 3, func(p *sim.Proc, c *Comm) {
		region := gpu.AllocBuffer[float64](c.Device(), 8)
		win := c.WinCreate(p, region.Whole())
		win.Fence(p) // open epoch

		// Every rank puts its id into slot rank of rank 0's window.
		src := fbuf(c, float64(100+c.Rank()))
		win.Put(p, src.Whole(), 1, 0, c.Rank())
		// Origin buffer reusable immediately after Put returns.
		src.Data()[0] = -1

		win.Fence(p) // close epoch: all puts visible
		if c.Rank() == 0 {
			for r := 0; r < 3; r++ {
				if region.Data()[r] != float64(100+r) {
					t.Errorf("window[%d] = %v", r, region.Data()[r])
				}
			}
		}
		win.Free(p)
	})
}

func TestRMAGet(t *testing.T) {
	runRanks(t, machine.Perlmutter(), 2, func(p *sim.Proc, c *Comm) {
		region := gpu.AllocBuffer[float64](c.Device(), 4)
		if c.Rank() == 1 {
			for i := range region.Data() {
				region.Data()[i] = float64(i * i)
			}
		}
		win := c.WinCreate(p, region.Whole())
		win.Fence(p)
		if c.Rank() == 0 {
			dst := gpu.AllocBuffer[float64](c.Device(), 2)
			win.Get(p, dst.Whole(), 2, 1, 2) // elements 2,3 of rank 1
			win.Fence(p)
			if dst.Data()[0] != 4 || dst.Data()[1] != 9 {
				t.Errorf("get = %v", dst.Data())
			}
		} else {
			win.Fence(p)
		}
		win.Free(p)
	})
}

func TestRMAAccumulate(t *testing.T) {
	const n = 4
	runRanks(t, machine.Perlmutter(), n, func(p *sim.Proc, c *Comm) {
		region := gpu.AllocBuffer[float64](c.Device(), 1)
		region.Data()[0] = 1 // accumulation base on every rank
		win := c.WinCreate(p, region.Whole())
		win.Fence(p)
		// All ranks accumulate (rank+1) into rank 0's single cell.
		src := fbuf(c, float64(c.Rank()+1))
		win.Accumulate(p, src.Whole(), 1, 0, 0, gpu.ReduceSum)
		win.Fence(p)
		if c.Rank() == 0 {
			if got := region.Data()[0]; got != 1+10 {
				t.Errorf("accumulate = %v, want 11", got)
			}
		}
		win.Free(p)
	})
}

func TestRMAPassiveTargetLock(t *testing.T) {
	const n = 4
	runRanks(t, machine.Perlmutter(), n, func(p *sim.Proc, c *Comm) {
		region := gpu.AllocBuffer[float64](c.Device(), 2)
		win := c.WinCreate(p, region.Whole())
		if c.Rank() != 0 {
			// Exclusive read-modify-write on rank 0's window: without
			// the lock the increments would race.
			win.Lock(p, 0)
			tmp := gpu.AllocBuffer[float64](c.Device(), 1)
			win.Get(p, tmp.Whole(), 1, 0, 0)
			win.Unlock(p, 0) // get complete
			win.Lock(p, 0)
			tmp.Data()[0]++
			win.Put(p, tmp.Whole(), 1, 0, 0)
			win.Unlock(p, 0)
		}
		// No fence: wait for everyone via barrier and check.
		c.Barrier(p)
		c.Barrier(p)
		if c.Rank() == 0 && region.Data()[0] < 1 {
			t.Errorf("lock-protected counter = %v", region.Data()[0])
		}
		win.Free(p)
	})
}

func TestRMAFenceWaitsForIncoming(t *testing.T) {
	// A large put from rank 0 must be complete at rank 1 after the fence,
	// even though rank 1 issued nothing.
	const count = 1 << 16
	runRanks(t, machine.Perlmutter(), 2, func(p *sim.Proc, c *Comm) {
		region := gpu.AllocBuffer[float64](c.Device(), count)
		win := c.WinCreate(p, region.Whole())
		win.Fence(p)
		if c.Rank() == 0 {
			src := gpu.AllocBuffer[float64](c.Device(), count)
			for i := range src.Data() {
				src.Data()[i] = float64(i)
			}
			win.Put(p, src.Whole(), count, 1, 0)
		}
		win.Fence(p)
		if c.Rank() == 1 {
			if region.Data()[count-1] != float64(count-1) {
				t.Errorf("tail = %v", region.Data()[count-1])
			}
		}
		win.Free(p)
	})
}

func TestRMATimingScalesWithSize(t *testing.T) {
	elapsed := func(count int) sim.Duration {
		var d sim.Duration
		runRanks(t, machine.Perlmutter(), 2, func(p *sim.Proc, c *Comm) {
			region := gpu.AllocBuffer[float64](c.Device(), count)
			win := c.WinCreate(p, region.Whole())
			win.Fence(p)
			start := p.Now()
			if c.Rank() == 0 {
				src := gpu.AllocBuffer[float64](c.Device(), count)
				win.Put(p, src.Whole(), count, 1, 0)
			}
			win.Fence(p)
			if c.Rank() == 0 {
				d = p.Now().Sub(start)
			}
			win.Free(p)
		})
		return d
	}
	small, big := elapsed(16), elapsed(1<<18)
	if big <= small {
		t.Fatalf("RMA time did not scale: small=%v big=%v", small, big)
	}
}
