package mpi

// ULFM-style communicator shrink (MPIX_Comm_shrink). Unlike Split, shrink
// cannot be built on an Allgather over the parent communicator: the dead
// ranks would have to participate. Real ULFM runs a fault-tolerant
// agreement protocol among the survivors; here the surviving membership is
// read from the shared failure state (every survivor is handed the same
// dead set by internal/core) and the agreement cost is charged explicitly,
// followed by a real barrier on the new context that synchronizes the
// survivors and validates the new communicator end to end.

import (
	"fmt"

	"repro/internal/sim"
)

// ShrinkExcluding builds a dense communicator over the members of c that
// are not in dead, preserving relative rank order. All survivors must call
// it with the same dead set and generation; gen (>= 1, bumped once per
// failure epoch) makes the derived context deterministic and distinct
// across repeated shrinks. The call synchronizes the survivors with a
// barrier on the new context before returning.
//
// Shrink contexts are negative (Split contexts are non-negative), so a
// shrunk communicator's traffic can never match stale traffic of any
// split-derived context.
func (c *Comm) ShrinkExcluding(p *sim.Proc, dead map[int]bool, gen int) *Comm {
	if gen < 1 || gen >= 4096 {
		panic(fmt.Sprintf("mpi: ShrinkExcluding generation %d outside [1, 4096)", gen))
	}
	myWorld := c.group[c.rank]
	if dead[myWorld] {
		panic(fmt.Sprintf("mpi: rank %d (world %d) shrinking a communicator it failed in", c.rank, myWorld))
	}
	var group []int
	myNew := -1
	for _, wr := range c.group {
		if dead[wr] {
			continue
		}
		if wr == myWorld {
			myNew = len(group)
		}
		group = append(group, wr)
	}
	base := c.ctx
	if base < 0 {
		base = -base
	}
	nc := &Comm{ep: c.ep, ctx: -(base*4096 + gen), group: group, rank: myNew}
	// Agreement round: charge log2(n) call overheads for the survivor vote,
	// then synchronize for real on the new context.
	prof := c.profile()
	rounds := 1
	for 1<<rounds < len(group) {
		rounds++
	}
	p.Advance(prof.CallOverhead * sim.Duration(2*rounds))
	nc.Barrier(p)
	return nc
}
