package mpi

// One-sided (RMA) communication. The paper notes that GPU-aware MPI has a
// mature one-sided API whose integration into UNICONN is future work
// (§V-A); this file implements that substrate so the extension can be
// exercised: window creation over device buffers, Put/Get/Accumulate, and
// both active-target (Fence) and passive-target (Lock/Unlock) epochs.
//
// Semantics follow MPI-3 RMA with a GPUDirect-style data path: transfers
// move GPU-to-GPU across the fabric; local/remote completion is deferred to
// the closing synchronization call, and operations inside one epoch may
// proceed concurrently.

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/machine"
	"repro/internal/sim"
)

// Win is a window handle owned by one rank, exposing a region of its device
// memory to one-sided access by the communicator's members.
type Win struct {
	comm *Comm
	obj  *winObject
}

// winObject is the communicator-wide shared window state.
type winObject struct {
	id      uint64
	regions []gpu.View // per rank
	// pending one-sided operations issued by each origin rank in the
	// current epoch (indexed by origin).
	pending []([]*sim.Gate)
	fence   *sim.Rendezvous
	locks   []*sim.Semaphore // per target rank, passive-target exclusive
}

// winShared matches collective WinCreate calls across ranks.
type winShared struct {
	seq  uint64
	objs map[uint64]*winObject
}

// WinCreate exposes region for one-sided access. Every rank of the
// communicator must call it collectively with its local region (regions may
// differ in size). It synchronizes like a barrier.
func (c *Comm) WinCreate(p *sim.Proc, region gpu.View) *Win {
	w := c.ep.world
	if w.wins == nil {
		w.wins = &winShared{objs: map[uint64]*winObject{}}
	}
	// Window identity: per-rank creation sequence (collective order).
	c.ep.winSeq++
	id := c.ep.winSeq
	obj := w.wins.objs[id]
	n := c.Size()
	if obj == nil {
		obj = &winObject{
			id:      id,
			regions: make([]gpu.View, n),
			pending: make([][]*sim.Gate, n),
			fence:   sim.NewRendezvous(fmt.Sprintf("win%d.fence", id), n),
		}
		for r := 0; r < n; r++ {
			obj.locks = append(obj.locks, sim.NewSemaphore(fmt.Sprintf("win%d.lock%d", id, r), 1))
		}
		w.wins.objs[id] = obj
	}
	obj.regions[c.rank] = region
	c.Barrier(p)
	return &Win{comm: c, obj: obj}
}

// Free releases the window collectively.
func (win *Win) Free(p *sim.Proc) {
	win.comm.Barrier(p)
	delete(win.comm.ep.world.wins.objs, win.obj.id)
}

// target resolves the exposed region of a communicator rank.
func (win *Win) target(rank int) gpu.View {
	v := win.obj.regions[rank]
	if v.IsZero() {
		panic(fmt.Sprintf("mpi: rank %d exposed no region in window %d", rank, win.obj.id))
	}
	return v
}

// rmaTransfer schedules a one-sided data movement and registers it in the
// origin's epoch; apply runs at delivery time.
func (win *Win) rmaTransfer(p *sim.Proc, origin, srcRank, dstRank int, bytes int64, apply func()) {
	c := win.comm
	prof := c.profile()
	p.Advance(prof.CallOverhead)
	w := c.ep.world
	eng := w.cluster.Eng
	if cd := w.cluster.Conduit; cd != nil && cd.Shards() > 1 {
		// One-sided windows couple origin and target timelines directly
		// (Transfer + a shared epoch gate list); no split protocol exists
		// for them yet, and core clamps RMA-using backends to one shard.
		panic("mpi: RMA transfers are not supported across engine shards")
	}
	srcW, dstW := c.group[srcRank], c.group[dstRank]
	path := w.cluster.Fabric.PathBetween(srcW, dstW)
	cost := w.cluster.Cost(machine.LibMPI, machine.APIHost, path, bytes)
	arrive := w.cluster.Fabric.Transfer(p.Now(), srcW, dstW, bytes, cost)
	done := sim.NewGate(fmt.Sprintf("win%d rma %d->%d", win.obj.id, srcW, dstW))
	eng.After(arrive.Sub(eng.Now()), func() {
		apply()
		done.Fire(eng)
	})
	win.obj.pending[origin] = append(win.obj.pending[origin], done)
}

// Put writes n elements of src into the target rank's window at offset
// targetOff. Completion is deferred to the closing Fence/Unlock.
func (win *Win) Put(p *sim.Proc, src gpu.View, n int, target, targetOff int) {
	dst := win.target(target).Slice(targetOff, n)
	staged := src.Slice(0, n).Clone() // origin buffer reusable immediately
	win.rmaTransfer(p, win.comm.rank, win.comm.rank, target, staged.Bytes(), func() {
		gpu.Copy(dst, staged, n)
		staged.Release()
	})
}

// Get reads n elements from the target rank's window at targetOff into dst.
func (win *Win) Get(p *sim.Proc, dst gpu.View, n int, target, targetOff int) {
	src := win.target(target).Slice(targetOff, n)
	// Request flight to the target, then the payload flows back.
	prof := win.comm.profile()
	p.Advance(prof.Intra.Alpha / 2)
	win.rmaTransfer(p, win.comm.rank, target, win.comm.rank, dst.Slice(0, n).Bytes(), func() {
		gpu.Copy(dst, src, n)
	})
}

// Accumulate applies src elementwise into the target window region with the
// reduction operator (MPI_Accumulate). Ordering between accumulates to the
// same target within an epoch follows delivery order, which the fabric
// keeps FIFO per pair.
func (win *Win) Accumulate(p *sim.Proc, src gpu.View, n int, target, targetOff int, op gpu.ReduceOp) {
	dst := win.target(target).Slice(targetOff, n)
	staged := src.Slice(0, n).Clone()
	win.rmaTransfer(p, win.comm.rank, win.comm.rank, target, staged.Bytes(), func() {
		gpu.Reduce(dst, staged, n, op)
		staged.Release()
	})
}

// completeLocal waits for every operation this origin issued in the epoch.
func (win *Win) completeLocal(p *sim.Proc) {
	me := win.comm.rank
	for _, g := range win.obj.pending[me] {
		g.Wait(p)
	}
	win.obj.pending[me] = nil
}

// Fence closes the current active-target epoch and opens the next: it
// completes all locally-issued operations, then synchronizes all ranks so
// every operation targeting anyone is also complete (MPI_Win_fence).
func (win *Win) Fence(p *sim.Proc) {
	win.completeLocal(p)
	win.obj.fence.Arrive(p)
}

// Lock opens a passive-target exclusive epoch on one target rank.
func (win *Win) Lock(p *sim.Proc, target int) {
	win.obj.locks[target].Acquire(p)
	// Lock acquisition costs one control round trip.
	p.Advance(win.comm.profile().Intra.Alpha)
}

// Unlock completes all operations issued in the passive epoch and releases
// the target.
func (win *Win) Unlock(p *sim.Proc, target int) {
	win.completeLocal(p)
	win.obj.locks[target].Release(p.Engine())
}
