package uniconn_test

// One benchmark per paper artifact (see DESIGN.md §3): each regenerates the
// corresponding table or figure at a reduced-but-representative scale and
// reports the headline quantities as custom metrics (virtual microseconds,
// percent overheads). Wall-clock ns/op measures the simulator itself; the
// reproduced results are the reported metrics.
//
// Run all:  go test -bench=. -benchmem
// One fig:  go test -bench=BenchmarkFig5 -benchtime=1x

import (
	"testing"

	uniconn "repro"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/solver/cg"
	"repro/internal/solver/jacobi"
	"repro/internal/sparse"
)

// benchSizes is the reduced sweep used inside benchmarks.
var benchSizes = []int64{8, 8 << 10, 1 << 20}

func mustLat(b *testing.B, cfg bench.NetConfig) sim.Duration {
	b.Helper()
	l, err := bench.Latency(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return l
}

func mustBw(b *testing.B, cfg bench.NetConfig) float64 {
	b.Helper()
	v, err := bench.Bandwidth(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return v
}

// BenchmarkFig2_NativeComparison reproduces the motivation benchmark
// (Fig. 2): native-library latency and bandwidth on Perlmutter and LUMI,
// intra- and inter-node. Metrics: small-message latency per library (us).
func BenchmarkFig2_NativeComparison(b *testing.B) {
	for _, m := range []*machine.Model{machine.Perlmutter(), machine.LUMI()} {
		b.Run(m.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, inter := range []bool{false, true} {
					for _, size := range benchSizes {
						for _, lib := range []struct {
							id  core.BackendID
							api machine.API
							ok  bool
						}{
							{core.MPIBackend, machine.APIHost, true},
							{core.GpucclBackend, machine.APIHost, true},
							{core.GpushmemBackend, machine.APIDevice, m.HasGPUSHMEM},
						} {
							if !lib.ok {
								continue
							}
							cfg := bench.NetConfig{Model: m, Backend: lib.id, API: lib.api,
								Native: true, Inter: inter, Bytes: size, Iters: 50, Warmup: 5}
							mustLat(b, cfg)
							mustBw(b, cfg)
						}
					}
				}
			}
			// Representative metric: who wins tiny messages intra-node.
			mpi := mustLat(b, bench.NetConfig{Model: m, Backend: core.MPIBackend,
				API: machine.APIHost, Native: true, Bytes: 8, Iters: 50, Warmup: 5})
			ccl := mustLat(b, bench.NetConfig{Model: m, Backend: core.GpucclBackend,
				API: machine.APIHost, Native: true, Bytes: 8, Iters: 50, Warmup: 5})
			b.ReportMetric(mpi.Micros(), "mpi-8B-us")
			b.ReportMetric(ccl.Micros(), "ccl-8B-us")
		})
	}
}

// benchNativeVsUniconn drives Figs. 3 and 4: average UNICONN latency
// overhead across the reduced sweep for each library.
func benchNativeVsUniconn(b *testing.B, inter bool) {
	for _, m := range machine.All() {
		b.Run(m.Name, func(b *testing.B) {
			var worst float64
			for i := 0; i < b.N; i++ {
				worst = 0
				libs := []struct {
					id  core.BackendID
					api machine.API
					ok  bool
				}{
					{core.MPIBackend, machine.APIHost, true},
					{core.GpucclBackend, machine.APIHost, true},
					{core.GpushmemBackend, machine.APIHost, m.HasGPUSHMEM},
					{core.GpushmemBackend, machine.APIDevice, m.HasGPUSHMEM},
				}
				for _, lib := range libs {
					if !lib.ok {
						continue
					}
					sum, n := 0.0, 0
					for _, size := range benchSizes {
						cfg := bench.NetConfig{Model: m, Backend: lib.id, API: lib.api,
							Inter: inter, Bytes: size, Iters: 50, Warmup: 5}
						cfg.Native = true
						nat := mustLat(b, cfg)
						cfg.Native = false
						uc := mustLat(b, cfg)
						sum += bench.PercentDiff(uc, nat)
						n++
					}
					if avg := sum / float64(n); avg > worst {
						worst = avg
					}
				}
			}
			b.ReportMetric(worst, "worst-avg-overhead-%")
		})
	}
}

// BenchmarkFig3_IntraNodeOverhead reproduces Fig. 3 (intra-node native vs
// UNICONN; paper: ≤7% average).
func BenchmarkFig3_IntraNodeOverhead(b *testing.B) { benchNativeVsUniconn(b, false) }

// BenchmarkFig4_InterNodeOverhead reproduces Fig. 4 (inter-node; ≤3%).
func BenchmarkFig4_InterNodeOverhead(b *testing.B) { benchNativeVsUniconn(b, true) }

// BenchmarkFig5_JacobiScaling reproduces Fig. 5: Jacobi per-iteration time
// at 4..64 GPUs, with the UNICONN-vs-native difference as the metric
// (paper: <1% average).
func BenchmarkFig5_JacobiScaling(b *testing.B) {
	for _, m := range machine.All() {
		b.Run(m.Name, func(b *testing.B) {
			var diff64 float64
			var perIter sim.Duration
			for i := 0; i < b.N; i++ {
				for _, n := range []int{4, 16, 64} {
					base := jacobi.Config{
						Model: m, NGPUs: n, NX: 1 << 12, NY: 1 << 12,
						Iters: 30, Warmup: 5, Compute: false,
					}
					natCfg := base
					natCfg.Variant = jacobi.NativeGPUCCL
					nat, err := jacobi.Run(natCfg)
					if err != nil {
						b.Fatal(err)
					}
					ucCfg := base
					ucCfg.Variant, ucCfg.Backend, ucCfg.Mode = jacobi.Uniconn, core.GpucclBackend, core.PureHost
					uc, err := jacobi.Run(ucCfg)
					if err != nil {
						b.Fatal(err)
					}
					if n == 64 {
						diff64 = bench.PercentDiff(uc.PerIter, nat.PerIter)
						perIter = uc.PerIter
					}
				}
			}
			b.ReportMetric(perIter.Micros(), "64gpu-per-iter-us")
			b.ReportMetric(diff64, "64gpu-uniconn-diff-%")
		})
	}
}

// BenchmarkFig6_CG reproduces Fig. 6: CG on 8 GPUs for the two matrix
// classes on Perlmutter and LUMI, with UNICONN diffs and the MPI/GPUCCL
// ratio (the Allgatherv anomaly) as metrics.
func BenchmarkFig6_CG(b *testing.B) {
	for _, m := range []*machine.Model{machine.Perlmutter(), machine.LUMI()} {
		for _, spec := range []sparse.SyntheticSPDSpec{sparse.Serena(), sparse.Queen4147()} {
			mat := spec.Generate(0.02)
			b.Run(m.Name+"/"+spec.Name, func(b *testing.B) {
				var ucDiff, mpiRatio float64
				for i := 0; i < b.N; i++ {
					base := cg.Config{Model: m, NGPUs: 8, Matrix: mat, Iters: 20, Compute: false}
					run := func(v cg.Variant, bk core.BackendID, mode core.LaunchMode) sim.Duration {
						c := base
						c.Variant, c.Backend, c.Mode = v, bk, mode
						r, err := cg.Run(c)
						if err != nil {
							b.Fatal(err)
						}
						return r.Total
					}
					natCCL := run(cg.NativeGPUCCL, 0, 0)
					ucCCL := run(cg.Uniconn, core.GpucclBackend, core.PureHost)
					natMPI := run(cg.NativeMPI, 0, 0)
					ucDiff = bench.PercentDiff(ucCCL, natCCL)
					mpiRatio = float64(natMPI) / float64(natCCL)
				}
				b.ReportMetric(ucDiff, "uniconn-diff-%")
				b.ReportMetric(mpiRatio, "mpi/ccl-ratio")
			})
		}
	}
}

// BenchmarkTable1_MachineModels renders Table I.
func BenchmarkTable1_MachineModels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if bench.Table1() == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2_SLOC recomputes Table II from the repository sources.
func BenchmarkTable2_SLOC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table2("."); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_A1_Grouping measures CommStart/CommEnd grouping on the
// MPI backend: grouped vs serialized blocking bidirectional exchange
// (DESIGN.md ablation A1).
func BenchmarkAblation_A1_Grouping(b *testing.B) {
	run := func(grouped bool) sim.Duration {
		const count = 1 << 16
		rep, err := uniconn.Launch(uniconn.Config{
			Model: uniconn.Perlmutter(), NGPUs: 2, Backend: uniconn.MPIBackend,
		}, func(env *uniconn.Env) {
			me := env.WorldRank()
			comm := uniconn.NewCommunicator(env)
			stream := env.NewStream("s")
			coord := uniconn.NewCoordinator(env, uniconn.PureHost, stream)
			a := uniconn.Alloc[float64](env, count)
			c := uniconn.Alloc[float64](env, count)
			sync := uniconn.Alloc[uint64](env, 2)
			peer := 1 - me
			for iter := 1; iter <= 20; iter++ {
				v := uint64(iter)
				if grouped {
					coord.CommStart()
					uniconn.Post(coord, a.Base(), c.Base(), count, uniconn.Sig(sync, 0), v, peer, comm)
					uniconn.Acknowledge(coord, c.Base(), count, uniconn.Sig(sync, 1), v, peer, comm)
					coord.CommEnd()
				} else if me == 0 {
					uniconn.Post(coord, a.Base(), c.Base(), count, uniconn.Sig(sync, 0), v, peer, comm)
					uniconn.Acknowledge(coord, c.Base(), count, uniconn.Sig(sync, 1), v, peer, comm)
				} else {
					uniconn.Acknowledge(coord, c.Base(), count, uniconn.Sig(sync, 1), v, peer, comm)
					uniconn.Post(coord, a.Base(), c.Base(), count, uniconn.Sig(sync, 0), v, peer, comm)
				}
			}
		})
		if err != nil {
			b.Fatal(err)
		}
		return sim.Duration(rep.End)
	}
	var g, ug sim.Duration
	for i := 0; i < b.N; i++ {
		g, ug = run(true), run(false)
	}
	b.ReportMetric(float64(ug)/float64(g), "serialized/grouped-ratio")
}

// BenchmarkAblation_A2_LaunchModes compares PureHost, PartialDevice, and
// PureDevice Jacobi on the GPUSHMEM backend (ablation A2).
func BenchmarkAblation_A2_LaunchModes(b *testing.B) {
	for _, mode := range []core.LaunchMode{core.PureHost, core.PartialDevice, core.PureDevice} {
		b.Run(mode.String(), func(b *testing.B) {
			var perIter sim.Duration
			for i := 0; i < b.N; i++ {
				res, err := jacobi.Run(jacobi.Config{
					Model: machine.Perlmutter(), NGPUs: 8, NX: 1 << 12, NY: 1 << 12,
					Iters: 30, Warmup: 5, Compute: false,
					Variant: jacobi.Uniconn, Backend: core.GpushmemBackend, Mode: mode,
				})
				if err != nil {
					b.Fatal(err)
				}
				perIter = res.PerIter
			}
			b.ReportMetric(perIter.Micros(), "per-iter-us")
		})
	}
}

// BenchmarkAblation_A3_EagerThreshold walks the MPI latency curve across
// the eager→rendezvous protocol switch (ablation A3).
func BenchmarkAblation_A3_EagerThreshold(b *testing.B) {
	var below, above sim.Duration
	for i := 0; i < b.N; i++ {
		below = mustLat(b, bench.NetConfig{Model: machine.Perlmutter(),
			Backend: core.MPIBackend, API: machine.APIHost, Native: true,
			Bytes: 8 << 10, Iters: 50, Warmup: 5})
		above = mustLat(b, bench.NetConfig{Model: machine.Perlmutter(),
			Backend: core.MPIBackend, API: machine.APIHost, Native: true,
			Bytes: 16 << 10, Iters: 50, Warmup: 5})
	}
	b.ReportMetric(below.Micros(), "8KiB-us")
	b.ReportMetric(above.Micros(), "16KiB-us")
	b.ReportMetric(float64(above)/float64(below), "knee-ratio")
}

// BenchmarkAblation_A4_GroupFusion measures GPUCCL kernel-launch
// amortization: grouped vs ungrouped neighbour exchange (ablation A4).
func BenchmarkAblation_A4_GroupFusion(b *testing.B) {
	run := func(grouped bool) sim.Duration {
		var d sim.Duration
		_, err := uniconn.Launch(uniconn.Config{
			Model: uniconn.Perlmutter(), NGPUs: 2, Backend: uniconn.GpucclBackend,
		}, func(env *uniconn.Env) {
			comm := uniconn.NewCommunicator(env)
			stream := env.NewStream("s")
			coord := uniconn.NewCoordinator(env, uniconn.PureHost, stream)
			a := uniconn.Alloc[float64](env, 256)
			c := uniconn.Alloc[float64](env, 256)
			sync := uniconn.Alloc[uint64](env, 2)
			peer := 1 - env.WorldRank()
			start := env.Proc().Now()
			for iter := 1; iter <= 20; iter++ {
				v := uint64(iter)
				if grouped {
					coord.CommStart()
					uniconn.Post(coord, a.Base(), c.Base(), 256, uniconn.Sig(sync, 0), v, peer, comm)
					uniconn.Acknowledge(coord, c.Base(), 256, uniconn.Sig(sync, 1), v, peer, comm)
					coord.CommEnd()
				} else if env.WorldRank() == 0 {
					// Ungrouped bidirectional GPUCCL ops must be ordered
					// or they deadlock (real NCCL semantics; see
					// TestUngroupedBidirectionalDeadlocks).
					uniconn.Post(coord, a.Base(), c.Base(), 256, uniconn.Sig(sync, 0), v, peer, comm)
					uniconn.Acknowledge(coord, c.Base(), 256, uniconn.Sig(sync, 1), v, peer, comm)
				} else {
					uniconn.Acknowledge(coord, c.Base(), 256, uniconn.Sig(sync, 1), v, peer, comm)
					uniconn.Post(coord, a.Base(), c.Base(), 256, uniconn.Sig(sync, 0), v, peer, comm)
				}
				env.StreamSynchronize(stream)
			}
			if env.WorldRank() == 0 {
				d = env.Proc().Now().Sub(start)
			}
		})
		if err != nil {
			b.Fatal(err)
		}
		return d
	}
	var g, ug sim.Duration
	for i := 0; i < b.N; i++ {
		g, ug = run(true), run(false)
	}
	b.ReportMetric(float64(ug)/float64(g), "ungrouped/grouped-ratio")
}
