// uniconn-chaos sweeps fault severity over the network microbenchmarks and
// prints per-backend latency/bandwidth degradation curves. The injected
// plans come from internal/faults: either a uniform degradation of the
// benchmarked path (-degrade, the default) or a randomized but
// seed-deterministic plan of link faults, NIC stall windows, and slow ranks
// (-generate). Backends and severities fan out over the deterministic
// parallel runner (internal/bench.Sweep); identical flags always print
// identical numbers at any UNICONN_WORKERS setting.
//
// With -recover the tool switches to hard-fault mode: plans from
// faults.GenerateHard additionally crash ranks (severity >= 0.5) and kill
// links — and, on a switched -topology, an aggregation switch or global
// channel (severity >= 0.5/0.75) — under an -ranks-GPU iterative allreduce
// workload, and the sweep reports whether the survivors completed by
// revoking and shrinking the communicator, plus the failure-detection and
// recovery latencies and the adaptive-routing failover count. -topology
// accepts a comma-separated list in this mode, one table section (and one
// BENCH JSON entry) per topology; -shards runs the hard-fault cells on the
// sharded engine, bit-identical at every shard count >= 1. -benchjson
// records the recovery sweep's wall clock and completion rate.
//
// -live serves the live telemetry endpoints (/metrics /healthz /debug/runs
// /debug/flight) while the sweep runs, and -flight retains a bounded
// per-shard event history that is dumped to stderr (and the -benchjson
// points) when a cell faults. Neither changes a byte of stdout. A SIGINT
// flushes the completed portion of the sweep before exiting.
//
// Usage:
//
//	uniconn-chaos                                # Perlmutter, inter-node, degrade ramp
//	uniconn-chaos -machine LUMI -bytes 1048576
//	uniconn-chaos -generate -seed 7 -severities 0,0.5,1
//	uniconn-chaos -recover -ranks 8 -benchjson BENCH_recovery.json
//	uniconn-chaos -recover -topology fattree -shards 4
//	uniconn-chaos -recover -topology flat,fattree,dragonfly:1,2,2
//	uniconn-chaos -recover -live 127.0.0.1:9187 -flight 256
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/telemetry"
)

func parseSeverities(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("bad severity %q: %w", f, err)
		}
		if v < 0 {
			return nil, fmt.Errorf("severity %g is negative", v)
		}
		out = append(out, v)
	}
	return out, nil
}

// backendChoice pairs a display label with a backend id.
type backendChoice struct {
	label   string
	backend core.BackendID
}

// recoveryJSON is the -benchjson record of one recovery sweep: per-topology
// survival curves, each holding the per-backend severity ramps.
type recoveryJSON struct {
	Description string                `json:"description"`
	Host        recoveryHost          `json:"host"`
	Machine     string                `json:"machine"`
	Ranks       int                   `json:"ranks"`
	Seed        uint64                `json:"seed"`
	Shards      int                   `json:"shards"`
	Severities  []float64             `json:"severities"`
	Topologies  []recoveryTopologyRun `json:"topologies"`
	Seconds     float64               `json:"total_seconds"`
}

type recoveryHost struct {
	NumCPU     int `json:"num_cpu"`
	GOMAXPROCS int `json:"gomaxprocs"`
}

type recoveryTopologyRun struct {
	// Topology is the resolved description ("flat", "fattree(k=4)", ...).
	Topology string               `json:"topology"`
	Backends []recoveryBackendRun `json:"backends"`
}

type recoveryBackendRun struct {
	Backend        string                `json:"backend"`
	Seconds        float64               `json:"seconds"`
	CompletionRate float64               `json:"completion_rate"`
	Points         []bench.RecoveryPoint `json:"points"`
}

// recoveryMode runs the hard-fault severity sweep per topology and backend,
// prints one table section per topology, and optionally records wall-clock +
// completion-rate JSON. The printed table carries virtual-time quantities
// only, so its bytes are identical at every -shards count >= 1 and with
// -live on or off (the CI determinism gates compare them with cmp). With
// -flight > 0 each faulted cell's flight-recorder post-mortem lands in the
// JSON and on stderr; a SIGINT flushes the completed portion of the report.
func recoveryMode(m *machine.Model, backends []backendChoice, severities []float64, ranks int, seed uint64, benchJSON string, topologies []fabric.TopologyConfig, shards, flightDepth int) error {
	fmt.Printf("recovery sweep on %s, %d ranks, seed %d (crashes from severity 0.5, link/switch faults from 0.5-0.75)\n",
		m.Name, ranks, seed)
	report := recoveryJSON{
		Description: "Recovery-aware chaos sweep (cmd/uniconn-chaos -recover): iterative allreduce under hard-fault plans; completion via communicator Revoke+Shrink, per-topology survival curves with adaptive-routing failovers.",
		Host:        recoveryHost{NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0)},
		Machine:     m.Name, Ranks: ranks, Seed: seed, Shards: shards, Severities: severities,
	}
	// The interrupt handler snapshots the report mid-sweep, so every append
	// below happens under mu.
	var mu sync.Mutex
	telemetry.OnInterrupt(func() {
		fmt.Fprintln(os.Stderr, "interrupted; flushing completed recovery results")
		if live := bench.Progress(); live != nil {
			live.WriteProgress(os.Stderr)
			fmt.Fprint(os.Stderr, live.MetricsSnapshot().Render())
		}
		if benchJSON == "" {
			return
		}
		mu.Lock()
		partial := report
		partial.Description += " [partial: interrupted by signal]"
		data, err := json.MarshalIndent(partial, "", "  ")
		mu.Unlock()
		if err == nil && os.WriteFile(benchJSON, append(data, '\n'), 0o644) == nil {
			fmt.Fprintf(os.Stderr, "wrote partial %s\n", benchJSON)
		}
	})
	total := time.Now()
	for ti, tc := range topologies {
		// Clone the model so the sweep's generated plans and launched runs
		// agree on the topology. Resolve auto-sized parameters up front so
		// the section header names the actual fabric (fattree(k=4), not k=0).
		mt := *m
		mt.Topology = tc
		resolved := fabric.ResolveTopology(tc, m.NodesFor(ranks))
		mu.Lock()
		report.Topologies = append(report.Topologies, recoveryTopologyRun{Topology: resolved.Describe()})
		mu.Unlock()
		fmt.Printf("\ntopology %s\n", resolved.Describe())
		fmt.Printf("%-10s%10s%9s%11s%11s%12s%11s%13s%14s%12s\n",
			"backend", "severity", "crashes", "survivors", "completed", "recoveries", "failovers", "detect lat", "recovery lat", "end")
		for _, b := range backends {
			bench.SetProgressLabel("chaos-recover " + resolved.Describe() + " " + b.label)
			start := time.Now()
			points, err := bench.RecoverySweepOpts(&mt, b.backend, ranks, severities, seed,
				bench.RecoveryOpts{FlightDepth: flightDepth, Live: bench.Progress()})
			if err != nil {
				return fmt.Errorf("%s/%s: %w", tc.Describe(), b.label, err)
			}
			completed := 0
			for _, p := range points {
				done := "no"
				if p.Completed {
					done = "yes"
					completed++
				}
				if p.Err != "" {
					done = "ERR"
				}
				fmt.Printf("%-10s%10.2f%9d%11d%11s%12d%11d%13v%14v%12v\n",
					b.label, p.Severity, p.Crashes, p.Survivors, done, p.Recoveries,
					p.Failovers, p.DetectLatency, p.RecoveryLatency, sim.Duration(p.End))
				if p.Err != "" {
					fmt.Printf("  %s severity %.2f error: %s\n", b.label, p.Severity, p.Err)
				}
				// Post-mortems are diagnostics, not results: stderr only,
				// in deterministic point order.
				if p.FlightDump != "" {
					fmt.Fprintf(os.Stderr, "post-mortem %s/%s severity %.2f:\n%s",
						resolved.Describe(), b.label, p.Severity, p.FlightDump)
				}
			}
			mu.Lock()
			report.Topologies[ti].Backends = append(report.Topologies[ti].Backends, recoveryBackendRun{
				Backend:        b.label,
				Seconds:        time.Since(start).Seconds(),
				CompletionRate: float64(completed) / float64(len(points)),
				Points:         points,
			})
			mu.Unlock()
		}
	}
	mu.Lock()
	report.Seconds = time.Since(total).Seconds()
	mu.Unlock()
	if benchJSON != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(benchJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", benchJSON)
	}
	return nil
}

func main() {
	common := spec.Common(flag.CommandLine)
	inter := flag.Bool("inter", true, "benchmark across two nodes")
	bytes := flag.Int64("bytes", 8192, "message size (multiple of 8)")
	sevFlag := flag.String("severities", "0,0.25,0.5,0.75,1", "comma-separated severity sweep")
	generate := flag.Bool("generate", false,
		"randomized seed-deterministic plans instead of uniform path degradation")
	seed := flag.Uint64("seed", 42, "fault-plan seed (with -generate)")
	recover := flag.Bool("recover", false,
		"recovery mode: hard-fault plans (rank crashes, dead links) under an iterative allreduce; "+
			"reports completion and recovery latency per severity")
	ranks := flag.Int("ranks", 8, "rank count of the recovery workload (with -recover)")
	benchJSON := flag.String("benchjson", "",
		"write recovery-sweep wall-clock and completion-rate JSON here (with -recover)")
	showMetrics := flag.Bool("metrics", false,
		"collect per-severity metrics and print the merged snapshot per backend (degrade/generate modes)")
	profilePath := flag.String("profile", "",
		"write a Chrome trace-event file of the profiled severity cells here (degrade/generate modes)")
	topoFlag := spec.TopologyListFlag(flag.CommandLine, "flat")
	flightDepth := flag.Int("flight", 0,
		"retain the last N engine events per shard and dump them on faults (with -recover); "+
			"post-mortems go to stderr and the -benchjson points")
	flag.Parse()

	common.ApplyEnv()

	live, closeLive, err := bench.StartLive(*common.Live, "chaos")
	if err != nil {
		log.Fatal(err)
	}
	defer closeLive()

	m, err := common.Model()
	if err != nil {
		log.Fatal(err)
	}
	topologies, err := spec.ParseTopologyList(*topoFlag)
	if err != nil {
		log.Fatal(err)
	}
	severities, err := parseSeverities(*sevFlag)
	if err != nil {
		log.Fatal(err)
	}

	backends := []backendChoice{{"MPI", core.MPIBackend}, {"GPUCCL", core.GpucclBackend}}
	if m.HasGPUSHMEM {
		backends = append(backends, backendChoice{"GPUSHMEM", core.GpushmemBackend})
	}

	if *recover {
		switched := false
		for _, tc := range topologies {
			if tc.Kind != fabric.TopoFlat {
				switched = true
			}
		}
		ranksSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "ranks" {
				ranksSet = true
			}
		})
		if switched && !ranksSet {
			// The 8-rank default spans two nodes — too few for redundant
			// fat-tree pods or >= 3 dragonfly groups. 32 ranks on a 4-GPU
			// machine is 8 nodes: a k=4 fat-tree with spare aggregations,
			// and four dragonfly:1,2,2 groups with a Valiant escape.
			*ranks = 32
		}
		if err := recoveryMode(m, backends, severities, *ranks, *seed, *benchJSON, topologies, *common.Shards, *flightDepth); err != nil {
			log.Fatal(err)
		}
		return
	}
	if len(topologies) != 1 {
		log.Fatalf("topology lists are for -recover; pick one of %q", *topoFlag)
	}
	if tc := topologies[0]; tc.Kind != fabric.TopoFlat {
		// Clone the model so the topology applies to every workload the tool
		// launches on it.
		m2 := *m
		m2.Topology = tc
		m = &m2
	}

	where, mode := "intra-node", "degrade ramp"
	if *inter {
		where = "inter-node"
	}
	if *generate {
		mode = fmt.Sprintf("generated plan (seed %d)", *seed)
		bench.SetProgressLabel("chaos-generate")
	} else {
		bench.SetProgressLabel("chaos-degrade")
	}
	telemetry.OnInterrupt(func() {
		fmt.Fprintln(os.Stderr, "interrupted mid-sweep")
		if live != nil {
			live.WriteProgress(os.Stderr)
			fmt.Fprint(os.Stderr, live.MetricsSnapshot().Render())
		}
	})
	fmt.Printf("chaos sweep on %s (%s), %d B, %s\n", m.Name, where, *bytes, mode)
	fmt.Printf("%-10s%10s%14s%10s%14s%10s%12s\n",
		"backend", "severity", "latency", "lat x", "bw GB/s", "bw frac", "transfers")

	profiled := *showMetrics || *profilePath != ""
	// The live metrics endpoint needs per-cell registries even when no
	// -metrics/-profile output was asked for; collect silently in that case
	// (cell profiles feed the tracker and nothing else).
	collect := profiled || live != nil

	// Each backend's severity ramp is an independent cell; the ramp itself
	// fans out again inside ChaosSweep. Rendered blocks (and, when profiling,
	// the per-severity cell profiles) are collected by backend index, so the
	// output prints in the fixed backend order.
	type backendOut struct {
		block string
		profs []bench.CellProfile
	}
	blocks, err := bench.Sweep(len(backends), func(i int) (backendOut, error) {
		b := backends[i]
		cfg := bench.NetConfig{Model: m, Backend: b.backend, API: machine.APIHost,
			Native: true, Inter: *inter, Bytes: *bytes}
		var planFor func(float64) *faults.Plan
		if *generate {
			fc := cfg.Model.FabricConfig(2)
			if *inter {
				mm := *m
				mm.GPUsPerNode, mm.NICsPerNode = 1, 1
				fc = mm.FabricConfig(2)
			}
			planFor = func(s float64) *faults.Plan {
				return faults.Generate(*seed, s, fc, sim.Second)
			}
		}
		var out backendOut
		var points []bench.ChaosPoint
		var err error
		if collect {
			points, out.profs, err = bench.ChaosSweepProfiled(cfg, severities, planFor)
			for pi := range out.profs {
				out.profs[pi].Label = b.label + "/" + out.profs[pi].Label
			}
		} else {
			points, err = bench.ChaosSweep(cfg, severities, planFor)
		}
		if err != nil {
			return out, fmt.Errorf("%s: %w", b.label, err)
		}
		for _, cp := range out.profs {
			live.AddSnapshot(cp.Metrics) // nil-safe
		}
		var baseLat sim.Duration
		var baseBW float64
		if len(points) > 0 {
			baseLat, baseBW = points[0].Latency, points[0].Bandwidth
		}
		var sb strings.Builder
		for _, p := range points {
			fmt.Fprintf(&sb, "%-10s%10.2f%14v%9.2fx%14.2f%10.2f%12d\n",
				b.label, p.Severity, p.Latency, p.LatencyFactor(baseLat),
				p.Bandwidth/1e9, p.BandwidthFactor(baseBW), p.Transfers)
		}
		out.block = sb.String()
		return out, nil
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, b := range blocks {
		fmt.Print(b.block)
	}
	if profiled {
		var all []bench.CellProfile
		for _, b := range blocks {
			all = append(all, b.profs...)
		}
		rp := &bench.RunProfile{
			Title: fmt.Sprintf("chaos %s (%d cells)", m.Name, len(all)),
			Cells: all,
		}
		if *showMetrics {
			for bi, b := range blocks {
				brp := bench.RunProfile{Cells: b.profs}
				fmt.Printf("\n%s merged metrics (%d severities):\n%s",
					backends[bi].label, len(b.profs), brp.Merged().Render())
			}
		}
		if *profilePath != "" {
			f, err := os.Create(*profilePath)
			if err != nil {
				log.Fatal(err)
			}
			if err := rp.WriteChromeTrace(f); err != nil {
				f.Close()
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s\n", *profilePath)
		}
	}
}
