// uniconn-chaos sweeps fault severity over the network microbenchmarks and
// prints per-backend latency/bandwidth degradation curves. The injected
// plans come from internal/faults: either a uniform degradation of the
// benchmarked path (-degrade, the default) or a randomized but
// seed-deterministic plan of link faults, NIC stall windows, and slow ranks
// (-generate). Backends and severities fan out over the deterministic
// parallel runner (internal/bench.Sweep); identical flags always print
// identical numbers at any UNICONN_WORKERS setting.
//
// Usage:
//
//	uniconn-chaos                                # Perlmutter, inter-node, degrade ramp
//	uniconn-chaos -machine LUMI -bytes 1048576
//	uniconn-chaos -generate -seed 7 -severities 0,0.5,1
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/sim"
)

func parseSeverities(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("bad severity %q: %w", f, err)
		}
		if v < 0 {
			return nil, fmt.Errorf("severity %g is negative", v)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	machineName := flag.String("machine", "Perlmutter", "Perlmutter|LUMI|MareNostrum5")
	inter := flag.Bool("inter", true, "benchmark across two nodes")
	bytes := flag.Int64("bytes", 8192, "message size (multiple of 8)")
	sevFlag := flag.String("severities", "0,0.25,0.5,0.75,1", "comma-separated severity sweep")
	generate := flag.Bool("generate", false,
		"randomized seed-deterministic plans instead of uniform path degradation")
	seed := flag.Uint64("seed", 42, "fault-plan seed (with -generate)")
	workers := flag.Int("workers", 0,
		"sweep worker count; 0 = UNICONN_WORKERS env or GOMAXPROCS")
	flag.Parse()

	if *workers > 0 {
		os.Setenv(bench.WorkersEnv, strconv.Itoa(*workers))
	}

	m := machine.ByName(*machineName)
	if m == nil {
		log.Fatalf("unknown machine %q", *machineName)
	}
	severities, err := parseSeverities(*sevFlag)
	if err != nil {
		log.Fatal(err)
	}

	backends := []struct {
		label   string
		backend core.BackendID
	}{{"MPI", core.MPIBackend}, {"GPUCCL", core.GpucclBackend}}
	if m.HasGPUSHMEM {
		backends = append(backends, struct {
			label   string
			backend core.BackendID
		}{"GPUSHMEM", core.GpushmemBackend})
	}

	where, mode := "intra-node", "degrade ramp"
	if *inter {
		where = "inter-node"
	}
	if *generate {
		mode = fmt.Sprintf("generated plan (seed %d)", *seed)
	}
	fmt.Printf("chaos sweep on %s (%s), %d B, %s\n", m.Name, where, *bytes, mode)
	fmt.Printf("%-10s%10s%14s%10s%14s%10s%12s\n",
		"backend", "severity", "latency", "lat x", "bw GB/s", "bw frac", "transfers")

	// Each backend's severity ramp is an independent cell; the ramp itself
	// fans out again inside ChaosSweep. Rendered blocks are collected by
	// backend index, so the table prints in the fixed backend order.
	blocks, err := bench.Sweep(len(backends), func(i int) (string, error) {
		b := backends[i]
		cfg := bench.NetConfig{Model: m, Backend: b.backend, API: machine.APIHost,
			Native: true, Inter: *inter, Bytes: *bytes}
		var planFor func(float64) *faults.Plan
		if *generate {
			fc := cfg.Model.FabricConfig(2)
			if *inter {
				mm := *m
				mm.GPUsPerNode, mm.NICsPerNode = 1, 1
				fc = mm.FabricConfig(2)
			}
			planFor = func(s float64) *faults.Plan {
				return faults.Generate(*seed, s, fc, sim.Second)
			}
		}
		points, err := bench.ChaosSweep(cfg, severities, planFor)
		if err != nil {
			return "", fmt.Errorf("%s: %w", b.label, err)
		}
		var baseLat sim.Duration
		var baseBW float64
		if len(points) > 0 {
			baseLat, baseBW = points[0].Latency, points[0].Bandwidth
		}
		var sb strings.Builder
		for _, p := range points {
			fmt.Fprintf(&sb, "%-10s%10.2f%14v%9.2fx%14.2f%10.2f%12d\n",
				b.label, p.Severity, p.Latency, p.LatencyFactor(baseLat),
				p.Bandwidth/1e9, p.BandwidthFactor(baseBW), p.Transfers)
		}
		return sb.String(), nil
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, block := range blocks {
		fmt.Print(block)
	}
}
