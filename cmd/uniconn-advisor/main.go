// uniconn-advisor implements the paper's future-work direction of
// performance-guided backend selection (§VIII): it calibrates every
// supported (backend, API) pair on a machine with the OSU-style
// microbenchmarks and prints, per message size and placement, which backend
// a UNICONN application should select.
//
// Usage:
//
//	uniconn-advisor                        # Perlmutter
//	uniconn-advisor -machine LUMI
//	uniconn-advisor -size 32768 -inter     # one query
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/autosel"
	"repro/internal/bench"
	"repro/internal/machine"
)

func main() {
	machineName := flag.String("machine", "Perlmutter", "Perlmutter|LUMI|MareNostrum5")
	size := flag.Int64("size", 0, "answer a single query for this message size (bytes)")
	inter := flag.Bool("inter", false, "query inter-node placement")
	flag.Parse()

	m := machine.ByName(*machineName)
	if m == nil {
		log.Fatalf("unknown machine %q", *machineName)
	}
	adv, err := autosel.Calibrate(m, nil)
	if err != nil {
		log.Fatal(err)
	}
	if *size > 0 {
		lw, lv := adv.Recommend(*size, *inter, autosel.MinLatency)
		bw, bv := adv.Recommend(*size, *inter, autosel.MaxBandwidth)
		fmt.Printf("machine=%s size=%s inter=%v\n", m.Name, bench.HumanBytes(*size), *inter)
		fmt.Printf("  lowest latency:  %v (%.2f us)\n", lw, lv/1000)
		fmt.Printf("  best bandwidth:  %v (%.2f GB/s)\n", bw, bv/1e9)
		return
	}
	fmt.Println(adv.Report())
	for _, inter := range []bool{false, true} {
		where := "intra-node"
		if inter {
			where = "inter-node"
		}
		if x := adv.Crossover(inter, autosel.MinLatency); x > 0 {
			fmt.Printf("%s latency crossover near %s\n", where, bench.HumanBytes(x))
		}
		if x := adv.Crossover(inter, autosel.MaxBandwidth); x > 0 {
			fmt.Printf("%s bandwidth crossover near %s\n", where, bench.HumanBytes(x))
		}
	}
}
