// uniconn-experiments regenerates every table and figure of the paper's
// evaluation section on the simulated clusters and prints them as text
// tables with the headline summary notes.
//
// Figure sweeps fan out over the deterministic parallel runner
// (internal/bench.Sweep); -workers or UNICONN_WORKERS bounds the pool, and
// the output is bit-identical at any worker count.
//
// Usage:
//
//	uniconn-experiments                  # everything, quick scale
//	uniconn-experiments -fig 5           # only Figure 5
//	uniconn-experiments -table 2         # only Table II
//	uniconn-experiments -scale paper     # publication sizing (slow)
//	uniconn-experiments -workers 1       # serial sweeps (debugging)
//	uniconn-experiments -benchjson BENCH_sweeps.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"time"

	"repro/internal/bench"
)

// sectionTiming is one entry of the -benchjson report.
type sectionTiming struct {
	Section string  `json:"section"`
	Seconds float64 `json:"seconds"`
}

type benchReport struct {
	Scale      string          `json:"scale"`
	Workers    int             `json:"workers"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	NumCPU     int             `json:"num_cpu"`
	Sections   []sectionTiming `json:"sections"`
	TotalSec   float64         `json:"total_seconds"`
}

func main() {
	fig := flag.Int("fig", 0, "regenerate only this figure (2..6); 0 = all")
	table := flag.Int("table", 0, "regenerate only this table (1..2); 0 = all")
	scaleName := flag.String("scale", "quick", "quick|paper experiment sizing")
	root := flag.String("root", ".", "repository root (for Table II SLOC counts)")
	workers := flag.Int("workers", 0,
		"sweep worker count; 0 = UNICONN_WORKERS env or GOMAXPROCS")
	benchJSON := flag.String("benchjson", "",
		"write per-section wall-clock timings to this JSON file")
	flag.Parse()

	scale := bench.Quick
	if *scaleName == "paper" {
		scale = bench.Paper
	} else if *scaleName != "quick" {
		log.Fatalf("unknown scale %q", *scaleName)
	}

	if *workers > 0 {
		os.Setenv(bench.WorkersEnv, strconv.Itoa(*workers))
	}

	report := benchReport{
		Scale:      *scaleName,
		Workers:    bench.Workers(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	timed := func(section string, fn func()) {
		start := time.Now()
		fn()
		report.Sections = append(report.Sections, sectionTiming{
			Section: section,
			Seconds: time.Since(start).Seconds(),
		})
	}

	onlyFigs := *fig != 0 || *table == 0
	onlyTables := *table != 0 || *fig == 0

	emit := func(figs []bench.Figure, err error) {
		if err != nil {
			log.Fatal(err)
		}
		for _, f := range figs {
			fmt.Println(f.Render())
		}
	}

	if onlyTables && (*table == 0 || *table == 1) {
		timed("table1", func() { fmt.Println(bench.Table1()) })
	}
	if onlyFigs {
		if *fig == 0 || *fig == 2 {
			timed("fig2", func() { emit(bench.RunFig2(scale)) })
		}
		if *fig == 0 || *fig == 3 {
			timed("fig3", func() { emit(bench.RunFig34(scale, false)) })
		}
		if *fig == 0 || *fig == 4 {
			timed("fig4", func() { emit(bench.RunFig34(scale, true)) })
		}
		if *fig == 0 || *fig == 5 {
			timed("fig5", func() { emit(bench.RunFig5(scale)) })
		}
		if *fig == 0 || *fig == 6 {
			timed("fig6", func() { emit(bench.RunFig6(scale)) })
		}
	}
	if onlyTables && (*table == 0 || *table == 2) {
		timed("table2", func() {
			s, err := bench.Table2(*root)
			if err != nil {
				fmt.Fprintf(os.Stderr, "Table II unavailable (run from the repository root): %v\n", err)
				os.Exit(1)
			}
			fmt.Println(s)
		})
	}

	if *benchJSON != "" {
		for _, s := range report.Sections {
			report.TotalSec += s.Seconds
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*benchJSON, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d sections, %.1fs total, %d workers)\n",
			*benchJSON, len(report.Sections), report.TotalSec, report.Workers)
	}
}
