// uniconn-experiments regenerates every table and figure of the paper's
// evaluation section on the simulated clusters and prints them as text
// tables with the headline summary notes.
//
// Usage:
//
//	uniconn-experiments                  # everything, quick scale
//	uniconn-experiments -fig 5           # only Figure 5
//	uniconn-experiments -table 2         # only Table II
//	uniconn-experiments -scale paper     # publication sizing (slow)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/bench"
)

func main() {
	fig := flag.Int("fig", 0, "regenerate only this figure (2..6); 0 = all")
	table := flag.Int("table", 0, "regenerate only this table (1..2); 0 = all")
	scaleName := flag.String("scale", "quick", "quick|paper experiment sizing")
	root := flag.String("root", ".", "repository root (for Table II SLOC counts)")
	flag.Parse()

	scale := bench.Quick
	if *scaleName == "paper" {
		scale = bench.Paper
	} else if *scaleName != "quick" {
		log.Fatalf("unknown scale %q", *scaleName)
	}

	onlyFigs := *fig != 0 || *table == 0
	onlyTables := *table != 0 || *fig == 0

	emit := func(figs []bench.Figure, err error) {
		if err != nil {
			log.Fatal(err)
		}
		for _, f := range figs {
			fmt.Println(f.Render())
		}
	}

	if onlyTables && (*table == 0 || *table == 1) {
		fmt.Println(bench.Table1())
	}
	if onlyFigs {
		if *fig == 0 || *fig == 2 {
			emit(bench.RunFig2(scale))
		}
		if *fig == 0 || *fig == 3 {
			emit(bench.RunFig34(scale, false))
		}
		if *fig == 0 || *fig == 4 {
			emit(bench.RunFig34(scale, true))
		}
		if *fig == 0 || *fig == 5 {
			emit(bench.RunFig5(scale))
		}
		if *fig == 0 || *fig == 6 {
			emit(bench.RunFig6(scale))
		}
	}
	if onlyTables && (*table == 0 || *table == 2) {
		s, err := bench.Table2(*root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "Table II unavailable (run from the repository root): %v\n", err)
			os.Exit(1)
		}
		fmt.Println(s)
	}
}
