// uniconn-netbench runs the OSU-derived latency/bandwidth microbenchmarks
// (paper §VI-B) for one machine and prints a sweep table comparing native
// and UNICONN implementations of every supported (library, API) pair.
//
// The size × column grid is a set of independent simulations; it fans out
// over the deterministic parallel runner (internal/bench.Sweep), so the
// table is bit-identical at any UNICONN_WORKERS setting.
//
// -live serves the live telemetry endpoints (/metrics /healthz /debug/runs
// /debug/flight) while the sweep runs, without changing a byte of stdout;
// a SIGINT prints the sweep progress and accumulated metrics to stderr.
//
// Usage:
//
//	uniconn-netbench                              # Perlmutter, intra-node
//	uniconn-netbench -machine LUMI -inter
//	uniconn-netbench -min 8 -max 16777216 -bw
//	uniconn-netbench -live 127.0.0.1:9187
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/telemetry"
)

func main() {
	common := spec.Common(flag.CommandLine)
	inter := flag.Bool("inter", false, "benchmark across two nodes")
	minSize := flag.Int64("min", 8, "smallest message (bytes)")
	maxSize := flag.Int64("max", 4<<20, "largest message (bytes)")
	bw := flag.Bool("bw", false, "measure bandwidth instead of latency")
	showMetrics := flag.Bool("metrics", false,
		"collect per-cell metrics and print the merged snapshot after the table")
	profilePath := flag.String("profile", "",
		"write a Chrome trace-event file of every cell here")
	topoFlag := spec.TopologyFlag(flag.CommandLine)
	flag.Parse()

	m, err := common.Model()
	if err != nil {
		log.Fatal(err)
	}
	tc, err := fabric.ParseTopology(*topoFlag)
	if err != nil {
		log.Fatal(err)
	}
	// Clone-on-override so the topology applies to every workload the tool
	// launches on the shared model value.
	m = spec.WithTopology(m, tc)
	if *minSize < 1 {
		log.Fatalf("-min %d: smallest message must be at least 1 byte", *minSize)
	}
	if *maxSize < *minSize {
		log.Fatalf("-max %d is smaller than -min %d", *maxSize, *minSize)
	}
	common.ApplyEnv()

	type col struct {
		label   string
		backend core.BackendID
		api     machine.API
		native  bool
	}
	var cols []col
	add := func(label string, b core.BackendID, api machine.API) {
		cols = append(cols,
			col{label + ":Native", b, api, true},
			col{label + ":Uniconn", b, api, false})
	}
	add("MPI", core.MPIBackend, machine.APIHost)
	add("GPUCCL", core.GpucclBackend, machine.APIHost)
	if m.HasGPUSHMEM {
		add("SHMEM-H", core.GpushmemBackend, machine.APIHost)
		add("SHMEM-D", core.GpushmemBackend, machine.APIDevice)
	}

	live, closeLive, err := bench.StartLive(*common.Live, "netbench")
	if err != nil {
		log.Fatal(err)
	}
	defer closeLive()
	telemetry.OnInterrupt(func() {
		fmt.Fprintln(os.Stderr, "interrupted mid-sweep")
		if live != nil {
			live.WriteProgress(os.Stderr)
			fmt.Fprint(os.Stderr, live.MetricsSnapshot().Render())
		}
	})

	sizes := bench.Sizes(*minSize, *maxSize)
	profiled := *showMetrics || *profilePath != ""

	// Cells that collect no metrics share one warmed cost cache per worker
	// (bench.ModelPool): the whole grid runs on one machine, so per-cell
	// cache rebuilds are pure waste. Metrics-collecting cells keep private
	// caches — their machine.costcache.* counters are part of the output.
	var pool *bench.ModelPool
	if !profiled && live == nil {
		pool = bench.NewModelPool(m, 0)
	}

	// One cell per (size, column); row-major so the serial order matches
	// the printed table. With -metrics/-profile every cell owns a private
	// Collector (see internal/bench/runner.go for the ownership rule), and
	// the profiles are reassembled in cell-index order below.
	type cellOut struct {
		val  float64
		prof bench.CellProfile
	}
	cells, err := bench.SweepWorker(len(sizes)*len(cols), func(k, i int) (cellOut, error) {
		c := cols[i%len(cols)]
		cfg := bench.NetConfig{Model: m, Backend: c.backend, API: c.api,
			Native: c.native, Inter: *inter, Bytes: sizes[i/len(cols)],
			Costs: pool.Costs(k)}
		var col *bench.Collector
		if profiled {
			col = bench.NewCollector()
			cfg.Metrics, cfg.Trace = col.Metrics, col.Trace
		} else if live != nil {
			// Metrics only — the live /metrics endpoint wants per-cell
			// registries, but nobody asked for span traces.
			cfg.Metrics = metrics.New()
		}
		var out cellOut
		var rep core.Report
		var err error
		if *bw {
			out.val, rep, err = bench.BandwidthRun(cfg)
		} else {
			var lat sim.Duration
			lat, rep, err = bench.LatencyRun(cfg)
			out.val = lat.Micros()
		}
		if err != nil {
			return out, err
		}
		if profiled {
			out.prof = col.Finish(
				fmt.Sprintf("%s/%dB", c.label, cfg.Bytes), rep.End)
		}
		if live != nil {
			live.AddSnapshot(cfg.Metrics.Snapshot())
		}
		return out, nil
	})
	if err != nil {
		log.Fatal(err)
	}
	vals := make([]float64, len(cells))
	profs := make([]bench.CellProfile, len(cells))
	for i, c := range cells {
		vals[i], profs[i] = c.val, c.prof
	}

	kind, unit := "one-way latency", "us"
	if *bw {
		kind, unit = "bandwidth", "GB/s"
	}
	where := "intra-node"
	if *inter {
		where = "inter-node"
	}
	fmt.Printf("%s on %s (%s), %s\n", kind, m.Name, where, unit)
	fmt.Printf("%-12s", "bytes")
	for _, c := range cols {
		fmt.Printf("%16s", c.label)
	}
	fmt.Println()
	for r, size := range sizes {
		fmt.Printf("%-12d", size)
		for k := range cols {
			v := vals[r*len(cols)+k]
			if *bw {
				fmt.Printf("%16.2f", v/1e9)
			} else {
				fmt.Printf("%16.2f", v)
			}
		}
		fmt.Println()
	}

	if profiled {
		rp := &bench.RunProfile{
			Title: fmt.Sprintf("netbench %s %s (%d cells)", m.Name, where, len(profs)),
			Cells: profs,
		}
		if *showMetrics {
			fmt.Printf("\nmerged metrics (%d cells):\n%s", len(profs), rp.Merged().Render())
		}
		if *profilePath != "" {
			f, err := os.Create(*profilePath)
			if err != nil {
				log.Fatal(err)
			}
			if err := rp.WriteChromeTrace(f); err != nil {
				f.Close()
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s\n", *profilePath)
		}
	}
}
