// uniconn-netbench runs the OSU-derived latency/bandwidth microbenchmarks
// (paper §VI-B) for one machine and prints a sweep table comparing native
// and UNICONN implementations of every supported (library, API) pair.
//
// Usage:
//
//	uniconn-netbench                              # Perlmutter, intra-node
//	uniconn-netbench -machine LUMI -inter
//	uniconn-netbench -min 8 -max 16777216 -bw
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/machine"
)

func main() {
	machineName := flag.String("machine", "Perlmutter", "Perlmutter|LUMI|MareNostrum5")
	inter := flag.Bool("inter", false, "benchmark across two nodes")
	minSize := flag.Int64("min", 8, "smallest message (bytes)")
	maxSize := flag.Int64("max", 4<<20, "largest message (bytes)")
	bw := flag.Bool("bw", false, "measure bandwidth instead of latency")
	flag.Parse()

	m := machine.ByName(*machineName)
	if m == nil {
		log.Fatalf("unknown machine %q", *machineName)
	}

	type col struct {
		label   string
		backend core.BackendID
		api     machine.API
		native  bool
	}
	var cols []col
	add := func(label string, b core.BackendID, api machine.API) {
		cols = append(cols,
			col{label + ":Native", b, api, true},
			col{label + ":Uniconn", b, api, false})
	}
	add("MPI", core.MPIBackend, machine.APIHost)
	add("GPUCCL", core.GpucclBackend, machine.APIHost)
	if m.HasGPUSHMEM {
		add("SHMEM-H", core.GpushmemBackend, machine.APIHost)
		add("SHMEM-D", core.GpushmemBackend, machine.APIDevice)
	}

	kind, unit := "one-way latency", "us"
	if *bw {
		kind, unit = "bandwidth", "GB/s"
	}
	where := "intra-node"
	if *inter {
		where = "inter-node"
	}
	fmt.Printf("%s on %s (%s), %s\n", kind, m.Name, where, unit)
	fmt.Printf("%-12s", "bytes")
	for _, c := range cols {
		fmt.Printf("%16s", c.label)
	}
	fmt.Println()
	for size := *minSize; size <= *maxSize; size *= 2 {
		fmt.Printf("%-12d", size)
		for _, c := range cols {
			cfg := bench.NetConfig{Model: m, Backend: c.backend, API: c.api,
				Native: c.native, Inter: *inter, Bytes: size}
			if *bw {
				v, err := bench.Bandwidth(cfg)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("%16.2f", v/1e9)
			} else {
				v, err := bench.Latency(cfg)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("%16.2f", v.Micros())
			}
		}
		fmt.Println()
	}
}
