// uniconn-netbench runs the OSU-derived latency/bandwidth microbenchmarks
// (paper §VI-B) for one machine and prints a sweep table comparing native
// and UNICONN implementations of every supported (library, API) pair.
//
// The size × column grid is a set of independent simulations; it fans out
// over the deterministic parallel runner (internal/bench.Sweep), so the
// table is bit-identical at any UNICONN_WORKERS setting.
//
// Usage:
//
//	uniconn-netbench                              # Perlmutter, intra-node
//	uniconn-netbench -machine LUMI -inter
//	uniconn-netbench -min 8 -max 16777216 -bw
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/machine"
)

func main() {
	machineName := flag.String("machine", "Perlmutter", "Perlmutter|LUMI|MareNostrum5")
	inter := flag.Bool("inter", false, "benchmark across two nodes")
	minSize := flag.Int64("min", 8, "smallest message (bytes)")
	maxSize := flag.Int64("max", 4<<20, "largest message (bytes)")
	bw := flag.Bool("bw", false, "measure bandwidth instead of latency")
	workers := flag.Int("workers", 0,
		"sweep worker count; 0 = UNICONN_WORKERS env or GOMAXPROCS")
	flag.Parse()

	m := machine.ByName(*machineName)
	if m == nil {
		log.Fatalf("unknown machine %q", *machineName)
	}
	if *minSize < 1 {
		log.Fatalf("-min %d: smallest message must be at least 1 byte", *minSize)
	}
	if *maxSize < *minSize {
		log.Fatalf("-max %d is smaller than -min %d", *maxSize, *minSize)
	}
	if *workers > 0 {
		os.Setenv(bench.WorkersEnv, strconv.Itoa(*workers))
	}

	type col struct {
		label   string
		backend core.BackendID
		api     machine.API
		native  bool
	}
	var cols []col
	add := func(label string, b core.BackendID, api machine.API) {
		cols = append(cols,
			col{label + ":Native", b, api, true},
			col{label + ":Uniconn", b, api, false})
	}
	add("MPI", core.MPIBackend, machine.APIHost)
	add("GPUCCL", core.GpucclBackend, machine.APIHost)
	if m.HasGPUSHMEM {
		add("SHMEM-H", core.GpushmemBackend, machine.APIHost)
		add("SHMEM-D", core.GpushmemBackend, machine.APIDevice)
	}

	sizes := bench.Sizes(*minSize, *maxSize)

	// One cell per (size, column); row-major so the serial order matches
	// the printed table.
	vals, err := bench.Sweep(len(sizes)*len(cols), func(i int) (float64, error) {
		c := cols[i%len(cols)]
		cfg := bench.NetConfig{Model: m, Backend: c.backend, API: c.api,
			Native: c.native, Inter: *inter, Bytes: sizes[i/len(cols)]}
		if *bw {
			return bench.Bandwidth(cfg)
		}
		lat, err := bench.Latency(cfg)
		return lat.Micros(), err
	})
	if err != nil {
		log.Fatal(err)
	}

	kind, unit := "one-way latency", "us"
	if *bw {
		kind, unit = "bandwidth", "GB/s"
	}
	where := "intra-node"
	if *inter {
		where = "inter-node"
	}
	fmt.Printf("%s on %s (%s), %s\n", kind, m.Name, where, unit)
	fmt.Printf("%-12s", "bytes")
	for _, c := range cols {
		fmt.Printf("%16s", c.label)
	}
	fmt.Println()
	for r, size := range sizes {
		fmt.Printf("%-12d", size)
		for k := range cols {
			v := vals[r*len(cols)+k]
			if *bw {
				fmt.Printf("%16.2f", v/1e9)
			} else {
				fmt.Printf("%16.2f", v)
			}
		}
		fmt.Println()
	}
}
