// uniconn-cg runs the paper's Conjugate Gradient experiment (§VI-D) on a
// Serena-like or Queen_4147-like synthetic SPD matrix, comparing native and
// UNICONN implementations (and optionally the no-Allgatherv ablation that
// isolates the MPI collective bottleneck).
//
// Usage:
//
//	uniconn-cg                                    # Serena-like, 8 GPUs
//	uniconn-cg -matrix queen -machine LUMI
//	uniconn-cg -scale 1.0 -iters 10000            # paper sizing (slow)
//	uniconn-cg -no-allgatherv                     # the §VI-D ablation
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/solver/cg"
	"repro/internal/sparse"
)

func main() {
	machineName := flag.String("machine", "Perlmutter", "Perlmutter|LUMI|MareNostrum5")
	matrixName := flag.String("matrix", "serena", "serena|queen|laplace")
	gpus := flag.Int("gpus", 8, "GPU count")
	scale := flag.Float64("scale", 0.05, "matrix scale factor (1.0 = paper size)")
	iters := flag.Int("iters", 100, "CG iterations")
	noAg := flag.Bool("no-allgatherv", false, "disable the SpMV exchange (ablation)")
	flag.Parse()

	m := machine.ByName(*machineName)
	if m == nil {
		log.Fatalf("unknown machine %q", *machineName)
	}
	var mat *sparse.CSR
	switch *matrixName {
	case "serena":
		mat = sparse.Serena().Generate(*scale)
	case "queen":
		mat = sparse.Queen4147().Generate(*scale)
	case "laplace":
		mat = sparse.Laplace3D(64, 64, 64)
	default:
		log.Fatalf("unknown matrix %q", *matrixName)
	}

	type vrt struct {
		label   string
		variant cg.Variant
		backend core.BackendID
		mode    core.LaunchMode
	}
	variants := []vrt{
		{"MPI:Native", cg.NativeMPI, 0, 0},
		{"MPI:Uniconn", cg.Uniconn, core.MPIBackend, core.PureHost},
		{"GPUCCL:Native", cg.NativeGPUCCL, 0, 0},
		{"GPUCCL:Uniconn", cg.Uniconn, core.GpucclBackend, core.PureHost},
	}
	if m.HasGPUSHMEM {
		variants = append(variants,
			vrt{"SHMEM-H:Native", cg.NativeGPUSHMEMHost, 0, 0},
			vrt{"SHMEM-H:Uniconn", cg.Uniconn, core.GpushmemBackend, core.PureHost},
			vrt{"SHMEM-D:Native", cg.NativeGPUSHMEMDevice, 0, 0},
			vrt{"SHMEM-D:Uniconn", cg.Uniconn, core.GpushmemBackend, core.PureDevice},
		)
	}

	fmt.Printf("CG on %s: %d rows, %d nnz, %d GPUs, %d iterations (no-allgatherv=%v)\n",
		m.Name, mat.Rows, mat.NNZ(), *gpus, *iters, *noAg)
	fmt.Printf("%-18s %14s %14s\n", "variant", "total (ms)", "per-iter (us)")
	for _, v := range variants {
		res, err := cg.Run(cg.Config{
			Model: m, NGPUs: *gpus, Matrix: mat, Iters: *iters,
			Compute: false, DisableAllgatherv: *noAg,
			Variant: v.variant, Backend: v.backend, Mode: v.mode,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %14.3f %14.2f\n", v.label,
			float64(res.Total)/float64(sim.Millisecond), res.PerIter.Micros())
	}
}
