// uniconn-prof profiles one simulated workload and prints a deterministic
// performance report: per-cell critical path (longest dependency chain, with
// compute / intra-node / inter-node / blocked attribution), per-rank time
// breakdown, the rank-to-rank communication matrix, and the merged metrics
// of every subsystem (scheduler, fabric, MPI protocol, collectives, faults).
//
// Every profiled cell owns a private metrics registry and span log, and the
// cells fan out over the deterministic sweep runner, so the report — and the
// optional metrics JSON and Chrome trace — are byte-identical at any
// -workers setting.
//
// Usage:
//
//	uniconn-prof                                    # net sweep, Perlmutter, MPI
//	uniconn-prof -workload net -backend GPUCCL -inter -min 8 -max 65536
//	uniconn-prof -workload jacobi -ngpus 8
//	uniconn-prof -workload cg -ngpus 8 -json metrics.json -trace trace.json
//	uniconn-prof -workload net -live 127.0.0.1:9187  # live progress endpoints
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/machine"
	"repro/internal/solver/cg"
	"repro/internal/solver/jacobi"
	"repro/internal/sparse"
	"repro/internal/spec"
	"repro/internal/telemetry"
)

func main() {
	workload := flag.String("workload", "net", "net|jacobi|cg")
	common := spec.Common(flag.CommandLine)
	backendName := flag.String("backend", "MPI", "MPI|GPUCCL|GPUSHMEM")
	device := flag.Bool("device", false, "device-initiated API (net; requires GPUSHMEM)")
	native := flag.Bool("native", false, "native library instead of UNICONN (net)")
	inter := flag.Bool("inter", false, "run across two nodes (net)")
	minSize := flag.Int64("min", 8, "smallest message of the net sweep (bytes)")
	maxSize := flag.Int64("max", 4096, "largest message of the net sweep (bytes)")
	ngpus := flag.Int("ngpus", 4, "rank count (jacobi, cg)")
	iters := flag.Int("iters", 20, "timed iterations (jacobi, cg)")
	jsonPath := flag.String("json", "", "write merged metrics JSON here")
	tracePath := flag.String("trace", "", "write Chrome trace-event JSON here")
	topoFlag := spec.TopologyFlag(flag.CommandLine)
	flag.Parse()

	common.ApplyEnv()
	m, err := common.Model()
	if err != nil {
		log.Fatal(err)
	}
	tc, err := fabric.ParseTopology(*topoFlag)
	if err != nil {
		log.Fatal(err)
	}
	m = spec.WithTopology(m, tc)
	backend, err := spec.ParseBackend(*backendName)
	if err != nil {
		log.Fatal(err)
	}
	api := machine.APIHost
	if *device {
		api = machine.APIDevice
	}

	live, closeLive, err := bench.StartLive(*common.Live, "prof-"+*workload)
	if err != nil {
		log.Fatal(err)
	}
	defer closeLive()
	telemetry.OnInterrupt(func() {
		fmt.Fprintln(os.Stderr, "interrupted before the report was written")
		live.WriteProgress(os.Stderr)
	})

	var prof *bench.RunProfile
	switch *workload {
	case "net":
		prof, err = bench.ProfileNet(bench.NetConfig{
			Model: m, Backend: backend, API: api, Native: *native, Inter: *inter,
		}, bench.Sizes(*minSize, *maxSize))
	case "jacobi":
		prof, err = bench.ProfileJacobi(jacobi.Config{
			Model: m, NGPUs: *ngpus, NX: 256, NY: 256,
			Iters: *iters, Warmup: 2,
			Variant: jacobi.Uniconn, Backend: backend, Mode: core.PureHost,
		})
	case "cg":
		spec := sparse.Serena()
		prof, err = bench.ProfileCG(cg.Config{
			Model: m, NGPUs: *ngpus, Matrix: spec.Generate(0.01), Iters: *iters,
			Variant: cg.Uniconn, Backend: backend, Mode: core.PureHost,
		})
	default:
		log.Fatalf("unknown workload %q (net|jacobi|cg)", *workload)
	}
	if err != nil {
		log.Fatal(err)
	}
	live.AddSnapshot(prof.Merged()) // nil-safe

	if err := prof.WriteReport(os.Stdout); err != nil {
		log.Fatal(err)
	}
	if *jsonPath != "" {
		if err := writeTo(*jsonPath, prof.WriteMetricsJSON); err != nil {
			log.Fatal(err)
		}
	}
	if *tracePath != "" {
		if err := writeTo(*tracePath, prof.WriteChromeTrace); err != nil {
			log.Fatal(err)
		}
	}
}

func writeTo(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
