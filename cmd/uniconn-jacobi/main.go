// uniconn-jacobi runs the paper's Jacobi 2D scaling experiment (§VI-C) for
// one machine, comparing the native and UNICONN implementations of every
// supported backend at a given GPU count, or sweeping GPU counts.
//
// Usage:
//
//	uniconn-jacobi                                # 8 GPUs on Perlmutter
//	uniconn-jacobi -machine LUMI -gpus 64 -ny 16384 -iters 1000
//	uniconn-jacobi -sweep                         # 4..64 GPUs
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/solver/jacobi"
	"repro/internal/trace"
)

func main() {
	machineName := flag.String("machine", "Perlmutter", "Perlmutter|LUMI|MareNostrum5")
	gpus := flag.Int("gpus", 8, "GPU count")
	nx := flag.Int("nx", 1<<12, "grid width")
	ny := flag.Int("ny", 1<<12, "grid height")
	iters := flag.Int("iters", 100, "timed iterations")
	warmup := flag.Int("warmup", 10, "warm-up iterations")
	compute := flag.Bool("compute", false, "execute the functional payload (verifiable, slower)")
	sweep := flag.Bool("sweep", false, "sweep GPU counts 4..64 (Fig. 5)")
	tracePath := flag.String("trace", "", "write a Chrome trace of the LAST run to this file")
	flag.Parse()

	m := machine.ByName(*machineName)
	if m == nil {
		log.Fatalf("unknown machine %q", *machineName)
	}

	type vrt struct {
		label   string
		variant jacobi.Variant
		backend core.BackendID
		mode    core.LaunchMode
	}
	variants := []vrt{
		{"MPI:Native", jacobi.NativeMPI, 0, 0},
		{"MPI:Uniconn", jacobi.Uniconn, core.MPIBackend, core.PureHost},
		{"GPUCCL:Native", jacobi.NativeGPUCCL, 0, 0},
		{"GPUCCL:Uniconn", jacobi.Uniconn, core.GpucclBackend, core.PureHost},
	}
	if m.HasGPUSHMEM {
		variants = append(variants,
			vrt{"SHMEM-H:Native", jacobi.NativeGPUSHMEMHost, 0, 0},
			vrt{"SHMEM-H:Uniconn", jacobi.Uniconn, core.GpushmemBackend, core.PureHost},
			vrt{"SHMEM-P:Uniconn", jacobi.Uniconn, core.GpushmemBackend, core.PartialDevice},
			vrt{"SHMEM-D:Native", jacobi.NativeGPUSHMEMDevice, 0, 0},
			vrt{"SHMEM-D:Uniconn", jacobi.Uniconn, core.GpushmemBackend, core.PureDevice},
		)
	}

	counts := []int{*gpus}
	if *sweep {
		counts = []int{4, 8, 16, 32, 64}
	}
	fmt.Printf("Jacobi 2D %dx%d on %s, %d iterations (+%d warm-up), per-iteration time (us)\n",
		*nx, *ny, m.Name, *iters, *warmup)
	fmt.Printf("%-6s", "GPUs")
	for _, v := range variants {
		fmt.Printf("%18s", v.label)
	}
	fmt.Println()
	var lastTrace *trace.Log
	for _, n := range counts {
		fmt.Printf("%-6d", n)
		for _, v := range variants {
			var tl *trace.Log
			if *tracePath != "" {
				tl = trace.New()
			}
			res, err := jacobi.Run(jacobi.Config{
				Model: m, NGPUs: n, NX: *nx, NY: *ny,
				Iters: *iters, Warmup: *warmup, Compute: *compute,
				Variant: v.variant, Backend: v.backend, Mode: v.mode,
				Trace: tl,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%18.2f", res.PerIter.Micros())
			if tl != nil {
				lastTrace = tl
			}
		}
		fmt.Println()
	}
	if lastTrace != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := lastTrace.WriteChromeTrace(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d spans to %s (open with chrome://tracing)\n", lastTrace.Len(), *tracePath)
		fmt.Println(lastTrace.Summarize().Render())
	}
}
