// uniconn-serve is the what-if query service: an HTTP/JSON API over the
// deterministic simulator answering "this workload, this machine, this
// backend → predicted time, critical path, comm matrix". Every answer is
// content-addressed by its spec hash (internal/spec) and cached
// (internal/cache), so repeated questions are O(1) and byte-identical;
// concurrent misses coalesce and batch into deterministic sweep runs
// (internal/serve). The telemetry plane's endpoints (/metrics /healthz
// /debug/runs /debug/flight) are mounted alongside /query and /stats, with
// the service's serve.* and cache.* counters on /metrics.
//
// SIGINT/SIGTERM shut down gracefully: the listener stops, in-flight
// requests and queued batches drain, then the process exits.
//
// With -loadtest the tool instead starts an in-process service, drives the
// three-phase load test (cold fill, hit timing, sustained warm load), and
// writes the report to -benchjson.
//
// Usage:
//
//	uniconn-serve -addr 127.0.0.1:8080
//	uniconn-serve -addr :8080 -cache-dir /var/cache/uniconn
//	uniconn-serve -loadtest -benchjson BENCH_serve.json
//	curl -s -X POST -d '{"workload":"allreduce","ranks":64,"bytes":1048576}' \
//	    http://127.0.0.1:8080/query
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cache"
	"repro/internal/serve"
	"repro/internal/spec"
	"repro/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (host:port, :0 picks a port)")
	cacheDir := flag.String("cache-dir", "", "persist cached results to this directory (survives restarts)")
	cacheEntries := flag.Int("cache-entries", 0, "in-memory cache entry cap (0 = default)")
	cacheBytes := flag.Int64("cache-bytes", 0, "in-memory cache byte cap (0 = default)")
	batchWindow := flag.Duration("batch-window", serve.DefaultBatchWindow,
		"how long the first miss of a batch waits to coalesce company before simulating")
	maxBatch := flag.Int("max-batch", serve.DefaultMaxBatch, "max specs per batched sweep")
	inflight := flag.Int("inflight", serve.DefaultMaxInflight, "max concurrently executing batches")
	queueCap := flag.Int("queue-cap", serve.DefaultQueueCap, "queued-spec cap before load shedding (503)")
	workers := flag.Int("workers", 0,
		"sweep worker count per batch; 0 = UNICONN_WORKERS env or GOMAXPROCS")
	loadtest := flag.Bool("loadtest", false,
		"run the load-test harness against an in-process service and exit")
	benchJSON := flag.String("benchjson", "BENCH_serve.json",
		"write the load-test report here (with -loadtest)")
	clients := flag.Int("clients", 8, "concurrent load-test clients (with -loadtest)")
	duration := flag.Duration("duration", 2*time.Second, "sustained load-test phase length (with -loadtest)")
	flag.Parse()

	spec.ApplyWorkersEnv(*workers)

	tracker := telemetry.NewTracker()
	tsrv := telemetry.NewServer(tracker)
	svc := serve.New(serve.Options{
		Cache: cache.New(cache.Options{
			MaxEntries: *cacheEntries, MaxBytes: *cacheBytes, Dir: *cacheDir,
		}),
		Registry:    tracker.Registry(),
		BatchWindow: *batchWindow,
		MaxBatch:    *maxBatch,
		MaxInflight: *inflight,
		QueueCap:    *queueCap,
	})
	handler := serve.NewHandler(svc, tsrv.Handler())

	if *loadtest {
		if err := runLoadTest(handler, svc, *clients, *duration, *benchJSON); err != nil {
			log.Fatal(err)
		}
		return
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: handler}
	fmt.Fprintf(os.Stderr, "uniconn-serve on http://%s  (/query /stats /metrics /healthz)\n",
		ln.Addr())
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "shutting down: draining in-flight requests and queued batches")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		svc.Close()
	case err := <-errCh:
		log.Fatal(err)
	}
}

// runLoadTest serves the handler on a loopback port, drives the harness,
// prints the headline numbers, and writes the report.
func runLoadTest(handler http.Handler, svc *serve.Service, clients int, duration time.Duration, benchJSON string) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: handler}
	go httpSrv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	defer func() {
		httpSrv.Close()
		svc.Close()
	}()
	rep, err := serve.LoadTest(serve.LoadTestConfig{
		BaseURL:  "http://" + ln.Addr().String(),
		Clients:  clients,
		Duration: duration,
	})
	if err != nil {
		return err
	}
	fmt.Printf("cold %v  hit %v  speedup %.0fx  (target >= %dx)\n",
		time.Duration(rep.ColdNs), time.Duration(rep.HitNs), rep.Speedup, serve.TargetSpeedup)
	fmt.Printf("sustained %.0f qps over %d clients, hit rate %.3f  (target >= %d qps)\n",
		rep.SustainedQPS, rep.Clients, rep.HitRate, serve.TargetQPS)
	fmt.Printf("targets met: %v\n", rep.TargetsMet)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(benchJSON, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", benchJSON)
	return nil
}
