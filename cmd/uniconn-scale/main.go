// uniconn-scale produces the rank-scaling curves behind BENCH_scale.json:
// one allreduce cell per (topology, algorithm, rank count), timed in virtual
// time, comparing the flat single-hop network against fat-tree and dragonfly
// switch fabrics and the flat-ring allreduce against the hierarchical
// (SMP-aware) algorithm.
//
// The flat-ring curve is capped separately (-ring-max-ranks, default 1024):
// the ring's 2(n-1) serialized steps make its wall-clock cost quadratic in
// total messages at 4096 ranks, while its virtual-time trend is already
// decided by 1024.
//
// -live serves the live telemetry endpoints (/metrics /healthz /debug/runs
// /debug/flight) — useful because the big cells take minutes of wall clock
// and /debug/runs carries an ETA. A SIGINT flushes the completed curves to
// the -out JSON (marked partial) before exiting.
//
// Usage:
//
//	uniconn-scale                                  # 64..4096, write BENCH_scale.json
//	uniconn-scale -bytes 262144 -max-ranks 1024 -out /tmp/scale.json
//	uniconn-scale -live 127.0.0.1:9187
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/fabric"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/spec"
	"repro/internal/telemetry"
)

// scalePoint is one (ranks, time) sample of a curve.
type scalePoint struct {
	Ranks     int     `json:"ranks"`
	Nodes     int     `json:"nodes"`
	PerIterNS int64   `json:"per_iter_ns"`
	PerIterUS float64 `json:"per_iter_us"`
	Seconds   float64 `json:"wall_seconds"`
}

// scaleCurve is one topology x algorithm sweep over the rank counts.
type scaleCurve struct {
	Topology string       `json:"topology"`
	Resolved string       `json:"resolved"`
	Alg      string       `json:"alg"`
	Points   []scalePoint `json:"points"`
}

type scaleJSON struct {
	Description string       `json:"description"`
	Host        scaleHost    `json:"host"`
	Machine     string       `json:"machine"`
	Bytes       int64        `json:"bytes"`
	Iters       int          `json:"iters"`
	Shards      int          `json:"shards"`
	RingCap     int          `json:"ring_max_ranks"`
	RingCapNote string       `json:"ring_cap_note"`
	Curves      []scaleCurve `json:"curves"`
	Seconds     float64      `json:"total_seconds"`
}

type scaleHost struct {
	NumCPU     int `json:"num_cpu"`
	GOMAXPROCS int `json:"gomaxprocs"`
}

// kindLabel is the short curve label of a topology ("flat", "fattree",
// "dragonfly"); the resolved description (fattree(k=8), ...) lands in the
// JSON separately once a run has sized the fabric.
func kindLabel(tc fabric.TopologyConfig) string {
	switch tc.Kind {
	case fabric.TopoFatTree:
		return "fattree"
	case fabric.TopoDragonfly:
		return "dragonfly"
	default:
		return "flat"
	}
}

func main() {
	common := spec.Common(flag.CommandLine)
	bytes := flag.Int64("bytes", 64<<10, "allreduce vector size per rank (multiple of 8)")
	iters := flag.Int("iters", 2, "timed iterations per cell")
	maxRanks := flag.Int("max-ranks", 4096, "largest rank count of the sweep")
	ringMax := flag.Int("ring-max-ranks", 1024, "largest rank count of the flat-ring curve")
	out := flag.String("out", "BENCH_scale.json", "output path")
	topoFlag := spec.TopologyListFlag(flag.CommandLine, "flat,fattree,dragonfly")
	flag.Parse()

	common.ApplyEnv()
	m, err := common.Model()
	if err != nil {
		log.Fatal(err)
	}
	topologies, err := spec.ParseTopologyList(*topoFlag)
	if err != nil {
		log.Fatal(err)
	}
	shards := common.Shards

	var ranks []int
	for r := 64; r <= *maxRanks; r *= 4 {
		ranks = append(ranks, r)
	}

	type curveSpec struct {
		label string
		topo  fabric.TopologyConfig
		alg   mpi.AllreduceAlg
		cap   int
	}
	// Hierarchical curves for every selected topology, then ring curves for
	// the flat/fat-tree ones (the ring maps poorly onto dragonfly groups and
	// its trend is already fixed by the cheaper fabrics). The default list
	// reproduces the classic five-curve sweep.
	var specs []curveSpec
	for _, tc := range topologies {
		specs = append(specs, curveSpec{kindLabel(tc), tc, mpi.AlgHierarchical, *maxRanks})
	}
	for _, tc := range topologies {
		if tc.Kind != fabric.TopoDragonfly {
			specs = append(specs, curveSpec{kindLabel(tc), tc, mpi.AlgRing, *ringMax})
		}
	}

	report := scaleJSON{
		Description: "Rank-scaling allreduce curves (cmd/uniconn-scale): flat vs fat-tree vs dragonfly inter-node topologies, hierarchical vs flat-ring algorithms, virtual time per iteration.",
		Host:        scaleHost{NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0)},
		Machine:     m.Name, Bytes: *bytes, Iters: *iters, Shards: *shards,
		RingCap: *ringMax,
		RingCapNote: fmt.Sprintf("ring curves stop at %d ranks: the ring's 2(n-1) serialized steps are wall-clock quadratic in simulated messages, and its virtual-time trend is already fixed there", *ringMax),
	}
	// The scale sweep runs serially (one engine already saturates the host
	// with -shards), so the live run is reported cell by cell by this loop
	// rather than through the bench runner.
	live, closeLive, err := bench.StartLive(*common.Live, "scale")
	if err != nil {
		log.Fatal(err)
	}
	defer closeLive()
	totalCells := 0
	for _, sp := range specs {
		for _, r := range ranks {
			if r <= sp.cap {
				totalCells++
			}
		}
	}
	lr := live.StartRun("scale", totalCells, 1)

	// The interrupt handler flushes whatever curves are complete, so every
	// append to the report happens under mu.
	var mu sync.Mutex
	telemetry.OnInterrupt(func() {
		fmt.Fprintln(os.Stderr, "interrupted; flushing completed scale curves")
		live.WriteProgress(os.Stderr)
		mu.Lock()
		partial := report
		partial.Description += " [partial: interrupted by signal]"
		data, err := json.MarshalIndent(partial, "", "  ")
		mu.Unlock()
		if err == nil && os.WriteFile(*out, append(data, '\n'), 0o644) == nil {
			fmt.Fprintf(os.Stderr, "wrote partial %s\n", *out)
		}
	})

	total := time.Now()
	fmt.Printf("allreduce scaling on %s, %s per rank, %d iters, shards=%d\n",
		m.Name, bench.HumanBytes(*bytes), *iters, *shards)
	fmt.Printf("%-11s%-14s%8s%8s%14s%12s\n", "topology", "alg", "ranks", "nodes", "per-iter", "wall s")
	cellIdx := 0
	for si, sp := range specs {
		mu.Lock()
		report.Curves = append(report.Curves, scaleCurve{Topology: sp.label, Alg: sp.alg.String()})
		mu.Unlock()
		for _, r := range ranks {
			if r > sp.cap {
				continue
			}
			lr.CellStart(0, cellIdx, fmt.Sprintf("%s/%s/%d", sp.label, sp.alg, r))
			cfg := bench.ScaleConfig{
				Model: m, Topology: sp.topo, Ranks: r, Bytes: *bytes,
				Alg: sp.alg, Iters: *iters, Warmup: 1, Shards: *shards,
			}
			if live != nil {
				cfg.Metrics = metrics.New()
			}
			start := time.Now()
			d, run, err := bench.ScaleAllreduce(cfg)
			if err != nil {
				log.Fatalf("%s/%s ranks=%d: %v", sp.label, sp.alg, r, err)
			}
			if live != nil {
				live.AddSnapshot(cfg.Metrics.Snapshot())
			}
			lr.CellDone(0, cellIdx)
			cellIdx++
			resolved := run.Topology.Describe()
			wall := time.Since(start).Seconds()
			mu.Lock()
			report.Curves[si].Resolved = resolved
			report.Curves[si].Points = append(report.Curves[si].Points, scalePoint{
				Ranks: r, Nodes: m.NodesFor(r),
				PerIterNS: int64(d), PerIterUS: d.Micros(), Seconds: wall,
			})
			mu.Unlock()
			fmt.Printf("%-11s%-14s%8d%8d%14s%12.1f\n",
				resolved, sp.alg, r, m.NodesFor(r), d.String(), wall)
		}
	}
	lr.End()
	mu.Lock()
	report.Seconds = time.Since(total).Seconds()
	data, err := json.MarshalIndent(report, "", "  ")
	mu.Unlock()
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%.1fs)\n", *out, report.Seconds)
}
