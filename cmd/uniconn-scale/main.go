// uniconn-scale produces the rank-scaling curves behind BENCH_scale.json:
// one allreduce cell per (topology, algorithm, rank count), timed in virtual
// time, comparing the flat single-hop network against fat-tree and dragonfly
// switch fabrics and the flat-ring allreduce against the hierarchical
// (SMP-aware) algorithm.
//
// The flat-ring curve is capped separately (-ring-max-ranks, default 1024):
// the ring's 2(n-1) serialized steps make its wall-clock cost quadratic in
// total messages at 4096 ranks, while its virtual-time trend is already
// decided by 1024.
//
// Usage:
//
//	uniconn-scale                                  # 64..4096, write BENCH_scale.json
//	uniconn-scale -bytes 262144 -max-ranks 1024 -out /tmp/scale.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"repro/internal/bench"
	"repro/internal/fabric"
	"repro/internal/machine"
	"repro/internal/mpi"
)

// scalePoint is one (ranks, time) sample of a curve.
type scalePoint struct {
	Ranks     int     `json:"ranks"`
	Nodes     int     `json:"nodes"`
	PerIterNS int64   `json:"per_iter_ns"`
	PerIterUS float64 `json:"per_iter_us"`
	Seconds   float64 `json:"wall_seconds"`
}

// scaleCurve is one topology x algorithm sweep over the rank counts.
type scaleCurve struct {
	Topology string       `json:"topology"`
	Resolved string       `json:"resolved"`
	Alg      string       `json:"alg"`
	Points   []scalePoint `json:"points"`
}

type scaleJSON struct {
	Description string       `json:"description"`
	Host        scaleHost    `json:"host"`
	Machine     string       `json:"machine"`
	Bytes       int64        `json:"bytes"`
	Iters       int          `json:"iters"`
	Shards      int          `json:"shards"`
	RingCap     int          `json:"ring_max_ranks"`
	RingCapNote string       `json:"ring_cap_note"`
	Curves      []scaleCurve `json:"curves"`
	Seconds     float64      `json:"total_seconds"`
}

type scaleHost struct {
	NumCPU     int `json:"num_cpu"`
	GOMAXPROCS int `json:"gomaxprocs"`
}

func main() {
	machineName := flag.String("machine", "Perlmutter", "Perlmutter|LUMI|MareNostrum5")
	bytes := flag.Int64("bytes", 64<<10, "allreduce vector size per rank (multiple of 8)")
	iters := flag.Int("iters", 2, "timed iterations per cell")
	shards := flag.Int("shards", 1, "engine shards per cell (windowed protocol; 0 = serial engine)")
	maxRanks := flag.Int("max-ranks", 4096, "largest rank count of the sweep")
	ringMax := flag.Int("ring-max-ranks", 1024, "largest rank count of the flat-ring curve")
	out := flag.String("out", "BENCH_scale.json", "output path")
	flag.Parse()

	m := machine.ByName(*machineName)
	if m == nil {
		log.Fatalf("unknown machine %q", *machineName)
	}

	var ranks []int
	for r := 64; r <= *maxRanks; r *= 4 {
		ranks = append(ranks, r)
	}

	type curveSpec struct {
		label string
		topo  fabric.TopologyConfig
		alg   mpi.AllreduceAlg
		cap   int
	}
	specs := []curveSpec{
		{"flat", fabric.TopologyConfig{}, mpi.AlgHierarchical, *maxRanks},
		{"fattree", fabric.TopologyConfig{Kind: fabric.TopoFatTree}, mpi.AlgHierarchical, *maxRanks},
		{"dragonfly", fabric.TopologyConfig{Kind: fabric.TopoDragonfly}, mpi.AlgHierarchical, *maxRanks},
		{"flat", fabric.TopologyConfig{}, mpi.AlgRing, *ringMax},
		{"fattree", fabric.TopologyConfig{Kind: fabric.TopoFatTree}, mpi.AlgRing, *ringMax},
	}

	report := scaleJSON{
		Description: "Rank-scaling allreduce curves (cmd/uniconn-scale): flat vs fat-tree vs dragonfly inter-node topologies, hierarchical vs flat-ring algorithms, virtual time per iteration.",
		Host:        scaleHost{NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0)},
		Machine:     m.Name, Bytes: *bytes, Iters: *iters, Shards: *shards,
		RingCap: *ringMax,
		RingCapNote: fmt.Sprintf("ring curves stop at %d ranks: the ring's 2(n-1) serialized steps are wall-clock quadratic in simulated messages, and its virtual-time trend is already fixed there", *ringMax),
	}
	total := time.Now()
	fmt.Printf("allreduce scaling on %s, %s per rank, %d iters, shards=%d\n",
		m.Name, bench.HumanBytes(*bytes), *iters, *shards)
	fmt.Printf("%-11s%-14s%8s%8s%14s%12s\n", "topology", "alg", "ranks", "nodes", "per-iter", "wall s")
	for _, sp := range specs {
		curve := scaleCurve{Topology: sp.label, Alg: sp.alg.String()}
		for _, r := range ranks {
			if r > sp.cap {
				continue
			}
			start := time.Now()
			d, run, err := bench.ScaleAllreduce(bench.ScaleConfig{
				Model: m, Topology: sp.topo, Ranks: r, Bytes: *bytes,
				Alg: sp.alg, Iters: *iters, Warmup: 1, Shards: *shards,
			})
			if err != nil {
				log.Fatalf("%s/%s ranks=%d: %v", sp.label, sp.alg, r, err)
			}
			resolved := run.Topology.Describe()
			curve.Resolved = resolved
			wall := time.Since(start).Seconds()
			curve.Points = append(curve.Points, scalePoint{
				Ranks: r, Nodes: m.NodesFor(r),
				PerIterNS: int64(d), PerIterUS: d.Micros(), Seconds: wall,
			})
			fmt.Printf("%-11s%-14s%8d%8d%14s%12.1f\n",
				resolved, sp.alg, r, m.NodesFor(r), d.String(), wall)
		}
		report.Curves = append(report.Curves, curve)
	}
	report.Seconds = time.Since(total).Seconds()

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%.1fs)\n", *out, report.Seconds)
}
