// uniconn-sloc recomputes the paper's Table II (source lines of code per
// experiment per library) from this repository's own benchmark and solver
// sources, or counts arbitrary Go files.
//
// Usage:
//
//	uniconn-sloc                      # Table II from the repository root
//	uniconn-sloc -root /path/to/repo
//	uniconn-sloc file1.go file2.go    # plain per-file counts
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/sloc"
)

func main() {
	root := flag.String("root", ".", "repository root")
	flag.Parse()

	if flag.NArg() > 0 {
		total := 0
		for _, path := range flag.Args() {
			n, err := sloc.CountFile(path)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%8d %s\n", n, path)
			total += n
		}
		fmt.Printf("%8d total\n", total)
		return
	}
	s, err := bench.Table2(*root)
	if err != nil {
		log.Fatalf("run from the repository root (or pass -root): %v", err)
	}
	fmt.Println(s)
}
