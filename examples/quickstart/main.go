// Quickstart: the smallest complete UNICONN program. Four simulated GPUs
// on a Perlmutter-like node each contribute their rank to an AllReduce and
// a Broadcast, showing the Setup → Progression → Termination structure of
// paper §IV and how a single flag switches the communication backend.
//
// Run:
//
//	go run ./examples/quickstart                  # GPUCCL backend
//	go run ./examples/quickstart -backend mpi
//	go run ./examples/quickstart -backend gpushmem
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	uniconn "repro"
)

func backendFromFlag(name string) (uniconn.BackendID, error) {
	switch strings.ToLower(name) {
	case "mpi":
		return uniconn.MPIBackend, nil
	case "gpuccl", "nccl", "rccl":
		return uniconn.GpucclBackend, nil
	case "gpushmem", "nvshmem":
		return uniconn.GpushmemBackend, nil
	default:
		return 0, fmt.Errorf("unknown backend %q (mpi|gpuccl|gpushmem)", name)
	}
}

func main() {
	backendName := flag.String("backend", "gpuccl", "communication backend: mpi|gpuccl|gpushmem")
	nGPUs := flag.Int("gpus", 4, "number of simulated GPUs")
	flag.Parse()

	backend, err := backendFromFlag(*backendName)
	if err != nil {
		log.Fatal(err)
	}

	cfg := uniconn.Config{Model: uniconn.Perlmutter(), NGPUs: *nGPUs, Backend: backend}
	report, err := uniconn.Launch(cfg, func(env *uniconn.Env) {
		// --- Setup (paper Listing 4, lines 1-29) ---
		env.SetDevice(env.NodeRank())
		comm := uniconn.NewCommunicator(env)
		stream := env.NewStream("main")
		coord := uniconn.NewCoordinator(env, uniconn.PureHost, stream)

		sum := uniconn.Alloc[float64](env, 1)
		msg := uniconn.Alloc[int64](env, 4)

		// --- Progression ---
		sum.Data()[0] = float64(env.WorldRank() + 1)
		uniconn.AllReduceInPlace(coord, uniconn.ReduceSum, sum.Base(), 1, comm)

		if env.WorldRank() == 0 {
			copy(msg.Data(), []int64{4, 8, 15, 16})
		}
		uniconn.Broadcast(coord, msg.Base(), 4, 0, comm)

		env.StreamSynchronize(stream)
		comm.Barrier(stream)
		env.StreamSynchronize(stream)

		n := env.WorldSize()
		if got, want := sum.Data()[0], float64(n*(n+1)/2); got != want {
			log.Fatalf("rank %d: allreduce = %v, want %v", env.WorldRank(), got, want)
		}
		fmt.Printf("rank %d/%d (node-local %d): allreduce=%v broadcast=%v (virtual time %v)\n",
			env.WorldRank(), n, env.NodeRank(), sum.Data()[0], msg.Data(), env.Proc().Now())

		// --- Termination: RAII-equivalent; Free for API fidelity ---
		sum.Free()
		msg.Free()
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("backend=%v gpus=%d: completed at virtual time %v\n", backend, *nGPUs, report.End)
}
