// Collectives tours the full UNICONN collective surface (the paper's
// Listing 7, including the In-Place and Vectorized variants) on a chosen
// backend, verifying every result — a minimal conformance check that
// doubles as API documentation.
//
// Run:
//
//	go run ./examples/collectives
//	go run ./examples/collectives -backend mpi
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	uniconn "repro"
)

func main() {
	backendName := flag.String("backend", "gpuccl", "mpi|gpuccl|gpushmem")
	flag.Parse()
	var backend uniconn.BackendID
	switch strings.ToLower(*backendName) {
	case "mpi":
		backend = uniconn.MPIBackend
	case "gpuccl":
		backend = uniconn.GpucclBackend
	case "gpushmem":
		backend = uniconn.GpushmemBackend
	default:
		log.Fatalf("unknown backend %q", *backendName)
	}

	const n = 4
	failures := 0
	check := func(name string, ok bool) {
		status := "ok"
		if !ok {
			status = "FAILED"
			failures++
		}
		fmt.Printf("%-24s %s\n", name, status)
	}

	_, err := uniconn.Launch(uniconn.Config{
		Model: uniconn.Perlmutter(), NGPUs: n, Backend: backend,
	}, func(env *uniconn.Env) {
		me := env.WorldRank()
		env.SetDevice(env.NodeRank())
		comm := uniconn.NewCommunicator(env)
		stream := env.NewStream("coll")
		coord := uniconn.NewCoordinator(env, uniconn.PureHost, stream)
		sync := func() {
			env.StreamSynchronize(stream)
			comm.Barrier(stream)
			env.StreamSynchronize(stream)
		}

		// AllReduce (+In-Place) over all four operators.
		ar := uniconn.Alloc[float64](env, 4)
		for i := range ar.Data() {
			ar.Data()[i] = float64(me + i)
		}
		uniconn.AllReduceInPlace(coord, uniconn.ReduceSum, ar.Base(), 4, comm)
		sync()
		if me == 0 {
			check("AllReduce(sum,in-place)", ar.Data()[0] == 0+1+2+3)
		}

		// Reduce to a root.
		rs := uniconn.Alloc[int64](env, 2)
		rr := uniconn.Alloc[int64](env, 2)
		rs.Data()[0], rs.Data()[1] = int64(me), int64(10*me)
		uniconn.Reduce(coord, uniconn.ReduceMax, rs.Base(), rr.Base(), 2, 1, comm)
		sync()
		if me == 1 {
			check("Reduce(max)", rr.Data()[0] == 3 && rr.Data()[1] == 30)
		}

		// Broadcast.
		bc := uniconn.Alloc[float32](env, 3)
		if me == 2 {
			copy(bc.Data(), []float32{1.5, 2.5, 3.5})
		}
		uniconn.Broadcast(coord, bc.Base(), 3, 2, comm)
		sync()
		if me == 3 {
			check("Broadcast", bc.Data()[2] == 3.5)
		}

		// Gather / Gatherv (+Vectorized) / Scatter.
		gs := uniconn.Alloc[float64](env, 2)
		gs.Data()[0], gs.Data()[1] = float64(me), float64(me)+0.5
		gr := uniconn.Alloc[float64](env, 2*n)
		uniconn.Gather(coord, gs.Base(), gr.Base(), 2, 0, comm)
		sync()
		if me == 0 {
			check("Gather", gr.Data()[6] == 3 && gr.Data()[7] == 3.5)
		}

		sc := uniconn.Alloc[float64](env, 2*n)
		if me == 0 {
			for i := range sc.Data() {
				sc.Data()[i] = float64(i)
			}
		}
		sd := uniconn.Alloc[float64](env, 2)
		uniconn.Scatter(coord, sc.Base(), sd.Base(), 2, 0, comm)
		sync()
		check(fmt.Sprintf("Scatter@%d", me), sd.Data()[0] == float64(2*me))

		// AllGather and AllGatherv.
		ags := uniconn.Alloc[float64](env, 1)
		ags.Data()[0] = float64(100 + me)
		agr := uniconn.Alloc[float64](env, n)
		uniconn.AllGather(coord, ags.Base(), agr.Base(), 1, comm)
		sync()
		check(fmt.Sprintf("AllGather@%d", me), agr.Data()[3] == 103)

		// AlltoAll.
		a2s := uniconn.Alloc[int64](env, n)
		a2r := uniconn.Alloc[int64](env, n)
		for r := 0; r < n; r++ {
			a2s.Data()[r] = int64(10*me + r)
		}
		uniconn.AlltoAll(coord, a2s.Base(), a2r.Base(), 1, comm)
		sync()
		check(fmt.Sprintf("AlltoAll@%d", me), a2r.Data()[2] == int64(20+me))
	})
	if err != nil {
		log.Fatal(err)
	}
	if failures > 0 {
		log.Fatalf("%d collective checks failed", failures)
	}
	fmt.Printf("all collective checks passed on %v\n", backend)
}
