// Chaos demonstrates the fault-injection layer: the same UNICONN ping-pong
// is run under fault plans of rising severity, and the resulting latency
// degradation is printed per backend. Because the fault plan is part of the
// simulation's deterministic input (seeded PRNG, virtual-time windows), any
// run of this program with the same flags prints bit-identical numbers.
//
// Run:
//
//	go run ./examples/chaos
//	go run ./examples/chaos -machine LUMI -bytes 65536 -seed 7 -generate
package main

import (
	"flag"
	"fmt"
	"log"

	uniconn "repro"
)

// onewayLatency measures a Post/Acknowledge ping-pong under a fault plan
// and returns the one-way latency across two nodes.
func onewayLatency(m *uniconn.Machine, backend uniconn.BackendID, plan *uniconn.FaultPlan, bytes int64) uniconn.Duration {
	const iters, warmup = 100, 10
	mm := *m
	mm.GPUsPerNode, mm.NICsPerNode = 1, 1 // two ranks on two nodes
	var total uniconn.Duration
	_, err := uniconn.Launch(uniconn.Config{Model: &mm, NGPUs: 2, Backend: backend, Faults: plan},
		func(env *uniconn.Env) {
			comm := uniconn.NewCommunicator(env)
			stream := env.NewStream("net")
			coord := uniconn.NewCoordinator(env, uniconn.PureHost, stream)
			n := int(bytes / 8)
			data := uniconn.Alloc[float64](env, n)
			sync := uniconn.Alloc[uint64](env, 2)
			me, peer := env.WorldRank(), 1-env.WorldRank()

			var start uniconn.Time
			for it := 1; it <= warmup+iters; it++ {
				if it == warmup+1 {
					env.StreamSynchronize(stream)
					comm.HostBarrier()
					start = env.Proc().Now()
				}
				v := uint64(it)
				if me == 0 {
					uniconn.Post(coord, data.Base(), data.Base(), n, uniconn.Sig(sync, 0), v, peer, comm)
					uniconn.Acknowledge(coord, data.Base(), n, uniconn.Sig(sync, 1), v, peer, comm)
				} else {
					uniconn.Acknowledge(coord, data.Base(), n, uniconn.Sig(sync, 0), v, peer, comm)
					uniconn.Post(coord, data.Base(), data.Base(), n, uniconn.Sig(sync, 1), v, peer, comm)
				}
				env.StreamSynchronize(stream)
			}
			if me == 0 {
				total = env.Proc().Now().Sub(start)
			}
		})
	if err != nil {
		log.Fatal(err)
	}
	return total / uniconn.Duration(2*iters)
}

func main() {
	machineName := flag.String("machine", "Perlmutter", "Perlmutter|LUMI|MareNostrum5")
	bytes := flag.Int64("bytes", 8192, "message size (multiple of 8)")
	seed := flag.Uint64("seed", 42, "fault-plan seed (with -generate)")
	generate := flag.Bool("generate", false,
		"use randomized seed-deterministic plans instead of uniform degradation")
	flag.Parse()

	var m *uniconn.Machine
	for _, cand := range uniconn.Machines() {
		if cand.Name == *machineName {
			m = cand
		}
	}
	if m == nil {
		log.Fatalf("unknown machine %q", *machineName)
	}

	backends := []struct {
		name string
		id   uniconn.BackendID
	}{{"MPI", uniconn.MPIBackend}, {"GPUCCL", uniconn.GpucclBackend}}
	if m.HasGPUSHMEM {
		backends = append(backends, struct {
			name string
			id   uniconn.BackendID
		}{"GPUSHMEM", uniconn.GpushmemBackend})
	}

	planFor := func(severity float64) *uniconn.FaultPlan {
		if *generate {
			mm := *m
			mm.GPUsPerNode, mm.NICsPerNode = 1, 1
			return uniconn.GenerateFaults(*seed, severity, mm.FabricConfig(2), uniconn.Duration(1e9))
		}
		return uniconn.DegradeFaults(uniconn.PathInter, severity)
	}

	fmt.Printf("inter-node ping-pong latency on %s, %d B, under fault plans\n", m.Name, *bytes)
	fmt.Printf("%-10s%14s%16s%10s\n", "backend", "severity", "latency", "slowdown")
	for _, b := range backends {
		baseline := onewayLatency(m, b.id, nil, *bytes)
		for _, sev := range []float64{0, 0.25, 0.5, 0.75, 1} {
			lat := onewayLatency(m, b.id, planFor(sev), *bytes)
			fmt.Printf("%-10s%14.2f%16v%9.2fx\n",
				b.name, sev, lat, float64(lat)/float64(baseline))
		}
	}
}
