// Jacobi runs the paper's 2D Jacobi halo-exchange solver (Listing 4)
// through the public UNICONN API, demonstrating the Coordinator's
// launch-mode switching: the same program runs PureHost on any backend and
// PartialDevice / PureDevice on GPUSHMEM, with only flags changing.
//
// Run:
//
//	go run ./examples/jacobi
//	go run ./examples/jacobi -backend mpi -gpus 8
//	go run ./examples/jacobi -backend gpushmem -mode puredevice
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	uniconn "repro"
)

func main() {
	backendName := flag.String("backend", "gpuccl", "mpi|gpuccl|gpushmem")
	modeName := flag.String("mode", "purehost", "purehost|partialdevice|puredevice")
	nGPUs := flag.Int("gpus", 4, "simulated GPUs")
	nx := flag.Int("nx", 512, "grid width")
	ny := flag.Int("ny", 512, "grid height")
	iters := flag.Int("iters", 200, "iterations")
	flag.Parse()

	var backend uniconn.BackendID
	switch strings.ToLower(*backendName) {
	case "mpi":
		backend = uniconn.MPIBackend
	case "gpuccl":
		backend = uniconn.GpucclBackend
	case "gpushmem":
		backend = uniconn.GpushmemBackend
	default:
		log.Fatalf("unknown backend %q", *backendName)
	}
	var mode uniconn.LaunchMode
	switch strings.ToLower(*modeName) {
	case "purehost":
		mode = uniconn.PureHost
	case "partialdevice":
		mode = uniconn.PartialDevice
	case "puredevice":
		mode = uniconn.PureDevice
	default:
		log.Fatalf("unknown mode %q", *modeName)
	}

	cfg := uniconn.Config{Model: uniconn.Perlmutter(), NGPUs: *nGPUs, Backend: backend}
	sums := make([]float64, *nGPUs)
	perIter := make([]uniconn.Duration, *nGPUs)

	_, err := uniconn.Launch(cfg, func(env *uniconn.Env) {
		me := env.WorldRank()
		env.SetDevice(env.NodeRank())
		comm := uniconn.NewCommunicator(env)
		stream := env.NewStream("jacobi")
		coord := uniconn.NewCoordinator(env, mode, stream)

		// Row decomposition along y (paper §VI-C).
		chunk := (*ny + *nGPUs - 1) / *nGPUs
		lo := me * chunk
		if lo+chunk > *ny {
			chunk = *ny - lo
		}
		rows := chunk + 2
		width := *nx
		top, bottom := me-1, me+1

		grid := [2]*uniconn.Mem[float32]{
			uniconn.Alloc[float32](env, rows*width),
			uniconn.Alloc[float32](env, rows*width),
		}
		sendBuf := [2]*uniconn.Mem[float32]{
			uniconn.Alloc[float32](env, 2*width),
			uniconn.Alloc[float32](env, 2*width),
		}
		recvBuf := [2]*uniconn.Mem[float32]{
			uniconn.Alloc[float32](env, 2*width),
			uniconn.Alloc[float32](env, 2*width),
		}
		sync := uniconn.Alloc[uint64](env, 4)

		// Dirichlet boundaries: global edges held at 1.
		for k := 0; k < 2; k++ {
			a := grid[k].Data()
			for r := 0; r < rows; r++ {
				a[r*width] = 1
				a[r*width+width-1] = 1
			}
			if top < 0 {
				for c := 0; c < width; c++ {
					a[c] = 1
				}
			}
			if bottom >= *nGPUs {
				for c := 0; c < width; c++ {
					a[(rows-1)*width+c] = 1
				}
			}
		}

		sweep := func(cur, next int) {
			a, anew := grid[cur].Data(), grid[next].Data()
			if top >= 0 {
				copy(a[:width], recvBuf[cur].Data()[:width])
			}
			if bottom < *nGPUs {
				copy(a[(rows-1)*width:], recvBuf[cur].Data()[width:2*width])
			}
			for r := 1; r <= chunk; r++ {
				for c := 1; c < width-1; c++ {
					anew[r*width+c] = 0.25 * (a[(r-1)*width+c] + a[(r+1)*width+c] +
						a[r*width+c-1] + a[r*width+c+1])
				}
			}
			copy(sendBuf[next].Data()[:width], anew[width:2*width])
			copy(sendBuf[next].Data()[width:2*width], anew[chunk*width:(chunk+1)*width])
		}

		dc := comm.ToDevice()
		start, stop := uniconn.NewEvent("start"), uniconn.NewEvent("stop")
		cur := 0
		comm.Barrier(stream)
		env.StreamSynchronize(stream)
		start.Record(stream)
		for iter := 1; iter <= *iters; iter++ {
			next := 1 - cur
			val := uint64(iter)
			c, n := cur, next

			kernel := &uniconn.Kernel{Name: "sweep", Body: func(kc *uniconn.KernelCtx) {
				kc.ComputeBytes(int64(chunk) * int64(width) * 8)
				sweep(c, n)
				if mode == uniconn.PureHost {
					return
				}
				var sig0, sig1 uniconn.Signal
				if mode == uniconn.PureDevice {
					sig0, sig1 = uniconn.Sig(sync, 0), uniconn.Sig(sync, 1)
				}
				if top >= 0 {
					uniconn.DevPost(kc, uniconn.Block, sendBuf[n].At(0),
						recvBuf[n].At(width), width, sig1, val, top, dc)
				}
				if bottom < env.WorldSize() {
					uniconn.DevPost(kc, uniconn.Block, sendBuf[n].At(width),
						recvBuf[n].At(0), width, sig0, val, bottom, dc)
				}
				if mode == uniconn.PureDevice {
					if top >= 0 {
						uniconn.DevAcknowledge(kc, uniconn.Sig(sync, 0), val, dc)
					}
					if bottom < env.WorldSize() {
						uniconn.DevAcknowledge(kc, uniconn.Sig(sync, 1), val, dc)
					}
				}
			}}
			coord.BindKernel(mode, kernel, nil)
			coord.LaunchKernel()

			if mode != uniconn.PureDevice {
				coord.CommStart()
				if top >= 0 {
					uniconn.Post(coord, sendBuf[next].At(0), recvBuf[next].At(width),
						width, uniconn.Sig(sync, 1), val, top, comm)
				}
				if bottom < env.WorldSize() {
					uniconn.Post(coord, sendBuf[next].At(width), recvBuf[next].At(0),
						width, uniconn.Sig(sync, 0), val, bottom, comm)
				}
				if top >= 0 {
					uniconn.Acknowledge(coord, recvBuf[next].At(0), width,
						uniconn.Sig(sync, 0), val, top, comm)
				}
				if bottom < env.WorldSize() {
					uniconn.Acknowledge(coord, recvBuf[next].At(width), width,
						uniconn.Sig(sync, 1), val, bottom, comm)
				}
				coord.CommEnd()
			}
			cur = next
		}
		stop.Record(stream)
		comm.Barrier(stream)
		env.StreamSynchronize(stream)

		sum := 0.0
		for r := 1; r <= chunk; r++ {
			for c := 0; c < width; c++ {
				sum += float64(grid[cur].Data()[r*width+c])
			}
		}
		sums[me] = sum
		perIter[me] = uniconn.Elapsed(start, stop) / uniconn.Duration(*iters)
	})
	if err != nil {
		log.Fatal(err)
	}

	total := 0.0
	for _, s := range sums {
		total += s
	}
	fmt.Printf("jacobi %dx%d on %d GPUs, backend=%v mode=%v\n", *nx, *ny, *nGPUs, backend, mode)
	fmt.Printf("interior checksum: %.6f\n", total)
	fmt.Printf("time per iteration (virtual): %v\n", perIter[0])
}
