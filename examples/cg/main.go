// CG runs the paper's distributed Conjugate Gradient solver (§VI-D) through
// the public UNICONN API: a 3D-Laplacian SPD system is partitioned row-wise
// across simulated GPUs; each iteration assembles the SpMV input with
// AllGatherv and reduces the two dot products with AllReduce. The residual
// is checked against a serial reference.
//
// Run:
//
//	go run ./examples/cg
//	go run ./examples/cg -backend gpushmem -gpus 8 -n 24
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"strings"

	uniconn "repro"
	"repro/internal/sparse"
)

func main() {
	backendName := flag.String("backend", "gpuccl", "mpi|gpuccl|gpushmem")
	nGPUs := flag.Int("gpus", 4, "simulated GPUs")
	n := flag.Int("n", 16, "Laplacian grid edge (matrix has n^3 rows)")
	iters := flag.Int("iters", 25, "CG iterations")
	flag.Parse()

	var backend uniconn.BackendID
	switch strings.ToLower(*backendName) {
	case "mpi":
		backend = uniconn.MPIBackend
	case "gpuccl":
		backend = uniconn.GpucclBackend
	case "gpushmem":
		backend = uniconn.GpushmemBackend
	default:
		log.Fatalf("unknown backend %q", *backendName)
	}

	mat := sparse.Laplace3D(*n, *n, *n)
	part := sparse.PartitionRows(mat.Rows, *nGPUs)
	counts, displs := part.Counts(), part.Displs()

	residuals := make([]float64, *nGPUs)
	cfg := uniconn.Config{Model: uniconn.Perlmutter(), NGPUs: *nGPUs, Backend: backend}
	_, err := uniconn.Launch(cfg, func(env *uniconn.Env) {
		me := env.WorldRank()
		env.SetDevice(env.NodeRank())
		comm := uniconn.NewCommunicator(env)
		stream := env.NewStream("cg")
		coord := uniconn.NewCoordinator(env, uniconn.PureHost, stream)
		p := env.Proc()

		lo, hi := part.Range(me)
		myRows := hi - lo
		maxRows := 0
		for r := 0; r < *nGPUs; r++ {
			if c := part.Count(r); c > maxRows {
				maxRows = c
			}
		}
		x := uniconn.Alloc[float64](env, maxRows)
		rv := uniconn.Alloc[float64](env, maxRows)
		pv := uniconn.Alloc[float64](env, maxRows)
		ap := uniconn.Alloc[float64](env, maxRows)
		pFull := uniconn.Alloc[float64](env, mat.Rows)
		dots := uniconn.Alloc[float64](env, 2)

		// b = A·1: exact solution is the ones vector.
		ones := make([]float64, mat.Rows)
		for i := range ones {
			ones[i] = 1
		}
		mat.SpMV(rv.Data()[:myRows], ones, lo, hi)
		copy(pv.Data()[:myRows], rv.Data()[:myRows])
		full := make([]float64, mat.Rows)
		mat.SpMV(full, ones, 0, mat.Rows)
		rsold := 0.0
		for _, v := range full {
			rsold += v * v
		}

		launch := func(name string, bytes int64, body func()) {
			stream.Launch(p, &uniconn.Kernel{Name: name, Body: func(kc *uniconn.KernelCtx) {
				kc.ComputeBytes(bytes)
				body()
			}}, nil)
		}
		for it := 0; it < *iters; it++ {
			uniconn.AllGatherv(coord, pv.Base(), pFull.Base(), counts, displs, comm)
			launch("spmv", mat.NNZRange(lo, hi)*16, func() {
				mat.SpMV(ap.Data()[:myRows], pFull.Data(), lo, hi)
			})
			launch("dot", int64(myRows)*16, func() {
				s := 0.0
				for i := 0; i < myRows; i++ {
					s += pv.Data()[i] * ap.Data()[i]
				}
				dots.Data()[0] = s
			})
			uniconn.AllReduceInPlace(coord, uniconn.ReduceSum, dots.Base(), 1, comm)
			env.StreamSynchronize(stream)
			alpha := rsold / dots.Data()[0]
			launch("axpy", int64(myRows)*48, func() {
				for i := 0; i < myRows; i++ {
					x.Data()[i] += alpha * pv.Data()[i]
					rv.Data()[i] -= alpha * ap.Data()[i]
				}
			})
			launch("dot2", int64(myRows)*16, func() {
				s := 0.0
				for i := 0; i < myRows; i++ {
					s += rv.Data()[i] * rv.Data()[i]
				}
				dots.Data()[1] = s
			})
			uniconn.AllReduceInPlace(coord, uniconn.ReduceSum, dots.At(1), 1, comm)
			env.StreamSynchronize(stream)
			rsnew := dots.Data()[1]
			beta := rsnew / rsold
			launch("updatep", int64(myRows)*24, func() {
				for i := 0; i < myRows; i++ {
					pv.Data()[i] = rv.Data()[i] + beta*pv.Data()[i]
				}
			})
			rsold = rsnew
		}
		env.StreamSynchronize(stream)
		comm.HostBarrier()
		residuals[me] = rsold
	})
	if err != nil {
		log.Fatal(err)
	}

	// Compare against the serial reference (same algorithm, one rank).
	serial := serialCG(mat, *iters)
	fmt.Printf("CG %d rows (%d nnz) on %d GPUs, backend=%v\n",
		mat.Rows, mat.NNZ(), *nGPUs, backend)
	fmt.Printf("distributed residual: %.6e\nserial residual:      %.6e\n",
		residuals[0], serial)
	if rel := math.Abs(residuals[0]-serial) / (serial + 1e-300); rel > 1e-6 {
		log.Fatalf("residual mismatch (rel %.2e)", rel)
	}
	fmt.Println("residuals match the serial reference")
}

// serialCG is the single-process reference.
func serialCG(m *sparse.CSR, iters int) float64 {
	n := m.Rows
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	b := make([]float64, n)
	m.SpMV(b, ones, 0, n)
	x := make([]float64, n)
	r := append([]float64{}, b...)
	p := append([]float64{}, b...)
	ap := make([]float64, n)
	rsold := 0.0
	for _, v := range r {
		rsold += v * v
	}
	for it := 0; it < iters; it++ {
		m.SpMV(ap, p, 0, n)
		pap := 0.0
		for i := range p {
			pap += p[i] * ap[i]
		}
		alpha := rsold / pap
		rsnew := 0.0
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
			rsnew += r[i] * r[i]
		}
		beta := rsnew / rsold
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rsold = rsnew
	}
	return rsold
}
