// Pingpong sweeps OSU-style latency and bandwidth between two simulated
// GPUs through the public UNICONN API — the network microbenchmark of paper
// §VI-B — and prints one row per message size for every backend the chosen
// machine supports, intra- or inter-node.
//
// Run:
//
//	go run ./examples/pingpong
//	go run ./examples/pingpong -machine LUMI -inter
package main

import (
	"flag"
	"fmt"
	"log"

	uniconn "repro"
)

// onewayLatency measures a Post/Acknowledge ping-pong and returns the
// one-way latency for the given size, using the UNICONN host API.
func onewayLatency(m *uniconn.Machine, backend uniconn.BackendID, inter bool, bytes int64) uniconn.Duration {
	const iters, warmup = 200, 20
	model := m
	if inter {
		mm := *m
		mm.GPUsPerNode, mm.NICsPerNode = 1, 1
		model = &mm
	}
	var total uniconn.Duration
	_, err := uniconn.Launch(uniconn.Config{Model: model, NGPUs: 2, Backend: backend},
		func(env *uniconn.Env) {
			comm := uniconn.NewCommunicator(env)
			stream := env.NewStream("net")
			coord := uniconn.NewCoordinator(env, uniconn.PureHost, stream)
			n := int(bytes / 8)
			data := uniconn.Alloc[float64](env, n)
			sync := uniconn.Alloc[uint64](env, 2)
			me, peer := env.WorldRank(), 1-env.WorldRank()

			var start uniconn.Time
			for it := 1; it <= warmup+iters; it++ {
				if it == warmup+1 {
					env.StreamSynchronize(stream)
					comm.HostBarrier()
					start = env.Proc().Now()
				}
				v := uint64(it)
				if me == 0 {
					uniconn.Post(coord, data.Base(), data.Base(), n, uniconn.Sig(sync, 0), v, peer, comm)
					uniconn.Acknowledge(coord, data.Base(), n, uniconn.Sig(sync, 1), v, peer, comm)
				} else {
					uniconn.Acknowledge(coord, data.Base(), n, uniconn.Sig(sync, 0), v, peer, comm)
					uniconn.Post(coord, data.Base(), data.Base(), n, uniconn.Sig(sync, 1), v, peer, comm)
				}
				env.StreamSynchronize(stream)
			}
			if me == 0 {
				total = env.Proc().Now().Sub(start)
			}
		})
	if err != nil {
		log.Fatal(err)
	}
	return total / (2 * iters)
}

func main() {
	machineName := flag.String("machine", "Perlmutter", "Perlmutter|LUMI|MareNostrum5")
	inter := flag.Bool("inter", false, "place the two GPUs on different nodes")
	maxSize := flag.Int64("max", 4<<20, "largest message size in bytes")
	flag.Parse()

	var model *uniconn.Machine
	for _, m := range uniconn.Machines() {
		if m.Name == *machineName {
			model = m
		}
	}
	if model == nil {
		log.Fatalf("unknown machine %q", *machineName)
	}

	backends := []uniconn.BackendID{uniconn.MPIBackend, uniconn.GpucclBackend}
	if model.HasGPUSHMEM {
		backends = append(backends, uniconn.GpushmemBackend)
	}
	where := "intra-node"
	if *inter {
		where = "inter-node"
	}
	fmt.Printf("UNICONN host-API one-way latency on %s (%s)\n", model.Name, where)
	fmt.Printf("%-12s", "bytes")
	for _, b := range backends {
		fmt.Printf("%14v", b)
	}
	fmt.Println()
	for size := int64(8); size <= *maxSize; size *= 4 {
		fmt.Printf("%-12d", size)
		for _, b := range backends {
			lat := onewayLatency(model, b, *inter, size)
			fmt.Printf("%12.2fus", lat.Micros())
		}
		fmt.Println()
	}
}
