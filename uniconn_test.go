package uniconn_test

// Facade smoke tests: the public surface (import "repro") must be able to
// express the paper's whole programming model — the deep coverage lives in
// the internal packages.

import (
	"testing"

	uniconn "repro"
)

func TestFacadeEndToEnd(t *testing.T) {
	for _, backend := range []uniconn.BackendID{
		uniconn.MPIBackend, uniconn.GpucclBackend, uniconn.GpushmemBackend,
	} {
		backend := backend
		t.Run(backend.String(), func(t *testing.T) {
			cfg := uniconn.Config{Model: uniconn.Perlmutter(), NGPUs: 4, Backend: backend}
			rep, err := uniconn.Launch(cfg, func(env *uniconn.Env) {
				env.SetDevice(env.NodeRank())
				comm := uniconn.NewCommunicator(env)
				stream := env.NewStream("t")
				coord := uniconn.NewCoordinator(env, uniconn.PureHost, stream)

				x := uniconn.Alloc[float64](env, 2)
				x.Data()[0] = float64(env.WorldRank())
				x.Data()[1] = 1
				uniconn.AllReduceInPlace(coord, uniconn.ReduceSum, x.Base(), 2, comm)

				// P2P ring through Post/Acknowledge.
				n := env.WorldSize()
				right := (env.WorldRank() + 1) % n
				left := (env.WorldRank() - 1 + n) % n
				s := uniconn.Alloc[int64](env, 1)
				r := uniconn.Alloc[int64](env, 1)
				sync := uniconn.Alloc[uint64](env, 1)
				s.Data()[0] = int64(10 + env.WorldRank())
				coord.CommStart()
				uniconn.Post(coord, s.Base(), r.Base(), 1, uniconn.Sig(sync, 0), 1, right, comm)
				uniconn.Acknowledge(coord, r.Base(), 1, uniconn.Sig(sync, 0), 1, left, comm)
				coord.CommEnd()

				env.StreamSynchronize(stream)
				comm.Barrier(stream)
				env.StreamSynchronize(stream)

				if x.Data()[0] != 6 || x.Data()[1] != 4 {
					t.Errorf("allreduce = %v", x.Data())
				}
				if r.Data()[0] != int64(10+left) {
					t.Errorf("ring got %d, want %d", r.Data()[0], 10+left)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.End <= 0 {
				t.Fatal("no virtual time elapsed")
			}
		})
	}
}

func TestFacadeSplitAndEvents(t *testing.T) {
	cfg := uniconn.Config{Model: uniconn.MareNostrum5(), NGPUs: 4, Backend: uniconn.GpucclBackend}
	_, err := uniconn.Launch(cfg, func(env *uniconn.Env) {
		comm := uniconn.NewCommunicator(env)
		stream := env.NewStream("t")
		sub := comm.Split(env.WorldRank()/2, env.WorldRank())
		if sub.GlobalSize() != 2 {
			t.Errorf("sub size = %d", sub.GlobalSize())
		}
		start, stop := uniconn.NewEvent("a"), uniconn.NewEvent("b")
		start.Record(stream)
		stream.Launch(env.Proc(), &uniconn.Kernel{
			Name: "noop",
			Body: func(kc *uniconn.KernelCtx) { kc.P.Advance(123) },
		}, nil)
		stop.Record(stream)
		env.StreamSynchronize(stream)
		if d := uniconn.Elapsed(start, stop); d < 123 {
			t.Errorf("elapsed = %v", d)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
