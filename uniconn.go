// Package uniconn is the public API of the UNICONN reproduction: a
// uniform, high-level communication library for portable multi-GPU
// programming (Sağbili et al., CLUSTER 2025), implemented in pure Go on top
// of a deterministic simulated GPU cluster.
//
// The library re-exports the paper's four abstractions:
//
//   - Env (Environment): backend initialization and device selection;
//   - Communicator: the process group, with barriers and device handles;
//   - Mem / Alloc (Memory): backend-appropriate buffer allocation
//     (symmetric heap on GPUSHMEM);
//   - Coordinator: kernel management under a LaunchMode, operation
//     grouping (CommStart/CommEnd), and the uniform communication
//     operations — Post/Acknowledge plus the collective set of the paper's
//     Listing 7 — over three interchangeable backends (MPIBackend,
//     GpucclBackend, GpushmemBackend).
//
// A minimal program:
//
//	cfg := uniconn.Config{Model: machine.Perlmutter(), NGPUs: 4, Backend: uniconn.GpucclBackend}
//	uniconn.Launch(cfg, func(env *uniconn.Env) {
//	    env.SetDevice(env.NodeRank())
//	    comm := uniconn.NewCommunicator(env)
//	    stream := env.NewStream("main")
//	    coord := uniconn.NewCoordinator(env, uniconn.PureHost, stream)
//	    x := uniconn.Alloc[float64](env, 1)
//	    x.Data()[0] = float64(env.WorldRank())
//	    uniconn.AllReduceInPlace(coord, uniconn.ReduceSum, x.Base(), 1, comm)
//	    env.StreamSynchronize(stream)
//	})
//
// See examples/ for complete programs (quickstart, ping-pong, Jacobi, CG)
// and DESIGN.md for the architecture and the simulation substitutions.
package uniconn

import (
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/gpu"
	"repro/internal/machine"
	"repro/internal/sim"
)

// Core abstractions (paper §IV).
type (
	// Config describes one simulated UNICONN job.
	Config = core.Config
	// Report summarises a completed run.
	Report = core.Report
	// Env is the Environment abstraction.
	Env = core.Env
	// Communicator encapsulates the process group.
	Communicator = core.Communicator
	// DeviceComm is the GPU-resident communicator handle.
	DeviceComm = core.DeviceComm
	// Coordinator manages kernels, grouping, and communication.
	Coordinator = core.Coordinator
	// BackendID selects a communication backend.
	BackendID = core.BackendID
	// LaunchMode selects PureHost / PartialDevice / PureDevice.
	LaunchMode = core.LaunchMode
	// ThreadGroup selects device-side execution granularity.
	ThreadGroup = core.ThreadGroup
	// Signal names one element of a uint64 allocation used for
	// completion signalling.
	Signal = core.Signal
	// Mem is a typed UNICONN allocation.
	Mem[T Elem] = core.Mem[T]
	// Ptr is a typed pointer into an allocation (buf + offset).
	Ptr[T Elem] = core.Ptr[T]
)

// Simulated GPU runtime surface used by applications.
type (
	// Elem constrains buffer element types.
	Elem = gpu.Elem
	// ReduceOp is a reduction operator.
	ReduceOp = gpu.ReduceOp
	// Kernel describes a launchable GPU kernel.
	Kernel = gpu.Kernel
	// KernelCtx is the device-side execution context.
	KernelCtx = gpu.KernelCtx
	// Stream is an in-order GPU execution queue.
	Stream = gpu.Stream
	// Event is a CUDA-style timing/synchronization event.
	Event = gpu.Event
	// Machine is a simulated system model (Table I).
	Machine = machine.Model
	// Duration is virtual time in nanoseconds.
	Duration = sim.Duration
	// Time is a virtual-time instant.
	Time = sim.Time
)

// Backend selectors.
const (
	MPIBackend      = core.MPIBackend
	GpucclBackend   = core.GpucclBackend
	GpushmemBackend = core.GpushmemBackend
)

// Launch modes.
const (
	PureHost      = core.PureHost
	PartialDevice = core.PartialDevice
	PureDevice    = core.PureDevice
)

// Thread granularities.
const (
	Thread = core.Thread
	Warp   = core.Warp
	Block  = core.Block
)

// Reduction operators.
const (
	ReduceSum  = gpu.ReduceSum
	ReduceProd = gpu.ReduceProd
	ReduceMin  = gpu.ReduceMin
	ReduceMax  = gpu.ReduceMax
)

// Machine models of the paper's three systems (Table I).
var (
	Perlmutter   = machine.Perlmutter
	LUMI         = machine.LUMI
	MareNostrum5 = machine.MareNostrum5
	Machines     = machine.All
)

// Fault injection (see internal/faults and DESIGN.md "Fault model"): a
// FaultPlan passed via Config.Faults deterministically degrades links,
// stalls NICs, and slows ranks of the simulated cluster. The hard-fault
// kinds (RankCrash, LinkDown) are terminal: a crashed rank is declared
// failed by the heartbeat detector and surfaces as a *RankFailedError in
// every blocked survivor (catch it with Env.Try + errors.As, then recover
// with Communicator.Revoke and Shrink; see DESIGN.md §9), and a dead link
// permanently reroutes traffic onto the fabric's degraded failover path.
type (
	FaultPlan   = faults.Plan
	FaultWindow = faults.Window
	LinkFault   = faults.LinkFault
	PortStall   = faults.PortStall
	SlowRank    = faults.SlowRank
	// RankCrash kills one rank at a virtual time.
	RankCrash = faults.RankCrash
	// LinkDown permanently fails matching routes from a virtual time on.
	LinkDown = faults.LinkDown
	// RankFailedError is the typed failure the detector delivers to
	// survivors of a rank crash; transparent to errors.Is/errors.As.
	RankFailedError = sim.RankFailedError
	// TimeoutError is returned by Launch when the virtual clock passes the
	// plan's watchdog deadline.
	TimeoutError = sim.TimeoutError
)

// ErrRevoked is aborted out of operations on a revoked communicator.
var ErrRevoked = core.ErrRevoked

// DefaultLease is the failure detector's heartbeat lease when a plan leaves
// Lease zero; detection latency is in [lease/2, lease).
const DefaultLease = faults.DefaultLease

// Fault-plan wildcards and constructors.
const (
	AnyRank      = faults.Any
	PathIntra    = fabric.PathIntra
	PathInter    = fabric.PathInter
	FaultForever = faults.Forever
)

var (
	// DegradeFaults builds a plan uniformly degrading one path kind.
	DegradeFaults = faults.Degrade
	// GenerateFaults builds a randomized, seed-deterministic plan.
	GenerateFaults = faults.Generate
	// GenerateHardFaults extends GenerateFaults with rank crashes
	// (severity >= 0.5) and a permanently dead link (severity >= 0.75).
	GenerateHardFaults = faults.GenerateHard
	// DetectAt reports when the failure detector declares a rank dead that
	// crashed at the given time under the given lease.
	DetectAt = core.DetectAt
)

// Launch runs main once per rank on the simulated cluster (the moral
// equivalent of mpirun for the simulation).
func Launch(cfg Config, main func(env *Env)) (Report, error) { return core.Launch(cfg, main) }

// NewCommunicator creates the world communicator for this rank.
func NewCommunicator(env *Env) *Communicator { return core.NewCommunicator(env) }

// NewCoordinator constructs a Coordinator bound to a stream.
func NewCoordinator(env *Env, mode LaunchMode, s *Stream) *Coordinator {
	return core.NewCoordinator(env, mode, s)
}

// NewEvent creates an unrecorded GPU event.
func NewEvent(name string) *Event { return gpu.NewEvent(name) }

// Elapsed reports the virtual time between two recorded events.
func Elapsed(start, end *Event) Duration { return gpu.Elapsed(start, end) }

// Alloc allocates n elements through the backend (Memory::Alloc).
func Alloc[T Elem](env *Env, n int) *Mem[T] { return core.Alloc[T](env, n) }

// Sig constructs a Signal reference (the paper's sig_loc argument).
func Sig(m *Mem[uint64], idx int) Signal { return core.Sig(m, idx) }

// Post sends count elements at send to peer (host API).
func Post[T Elem](c *Coordinator, send, recv Ptr[T], count int, sig Signal, sigVal uint64, peer int, comm *Communicator) {
	core.Post(c, send, recv, count, sig, sigVal, peer, comm)
}

// Acknowledge completes the receive side of a Post (host API).
func Acknowledge[T Elem](c *Coordinator, recv Ptr[T], count int, sig Signal, sigVal uint64, peer int, comm *Communicator) {
	core.Acknowledge(c, recv, count, sig, sigVal, peer, comm)
}

// AllReduce reduces count elements elementwise across the communicator.
func AllReduce[T Elem](c *Coordinator, op ReduceOp, send, recv Ptr[T], count int, comm *Communicator) {
	core.AllReduce(c, op, send, recv, count, comm)
}

// AllReduceInPlace is the +In-Place AllReduce variant.
func AllReduceInPlace[T Elem](c *Coordinator, op ReduceOp, buf Ptr[T], count int, comm *Communicator) {
	core.AllReduceInPlace(c, op, buf, count, comm)
}

// Reduce combines count elements into recv on root.
func Reduce[T Elem](c *Coordinator, op ReduceOp, send, recv Ptr[T], count, root int, comm *Communicator) {
	core.Reduce(c, op, send, recv, count, root, comm)
}

// Broadcast sends root's buffer to every rank.
func Broadcast[T Elem](c *Coordinator, buf Ptr[T], count, root int, comm *Communicator) {
	core.Broadcast(c, buf, count, root, comm)
}

// Gather collects equal contributions on root.
func Gather[T Elem](c *Coordinator, send, recv Ptr[T], count, root int, comm *Communicator) {
	core.Gather(c, send, recv, count, root, comm)
}

// Gatherv is the +Vectorized gather.
func Gatherv[T Elem](c *Coordinator, send, recv Ptr[T], counts, displs []int, root int, comm *Communicator) {
	core.Gatherv(c, send, recv, counts, displs, root, comm)
}

// Scatter distributes root's buffer in equal chunks.
func Scatter[T Elem](c *Coordinator, send, recv Ptr[T], count, root int, comm *Communicator) {
	core.Scatter(c, send, recv, count, root, comm)
}

// Scatterv is the +Vectorized scatter.
func Scatterv[T Elem](c *Coordinator, send, recv Ptr[T], counts, displs []int, root int, comm *Communicator) {
	core.Scatterv(c, send, recv, counts, displs, root, comm)
}

// AllGather concatenates equal contributions on every rank.
func AllGather[T Elem](c *Coordinator, send, recv Ptr[T], count int, comm *Communicator) {
	core.AllGather(c, send, recv, count, comm)
}

// AllGatherv is the variable-size allgather (the CG solver's exchange).
func AllGatherv[T Elem](c *Coordinator, send, recv Ptr[T], counts, displs []int, comm *Communicator) {
	core.AllGatherv(c, send, recv, counts, displs, comm)
}

// AlltoAll exchanges equal chunks between every pair of ranks.
func AlltoAll[T Elem](c *Coordinator, send, recv Ptr[T], count int, comm *Communicator) {
	core.AlltoAll(c, send, recv, count, comm)
}

// AlltoAllv is the +Vectorized all-to-all.
func AlltoAllv[T Elem](c *Coordinator, send, recv Ptr[T], sendCounts, sendDispls, recvCounts, recvDispls []int, comm *Communicator) {
	core.AlltoAllv(c, send, recv, sendCounts, sendDispls, recvCounts, recvDispls, comm)
}

// DevPost is the device-side Post (PureDevice/PartialDevice kernels).
func DevPost[T Elem](kc *KernelCtx, g ThreadGroup, send, recv Ptr[T], count int, sig Signal, sigVal uint64, peer int, dc *DeviceComm) {
	core.DevPost(kc, g, send, recv, count, sig, sigVal, peer, dc)
}

// DevAcknowledge waits on a signal from device code.
func DevAcknowledge(kc *KernelCtx, sig Signal, sigVal uint64, dc *DeviceComm) {
	core.DevAcknowledge(kc, sig, sigVal, dc)
}

// DevQuiet completes device-initiated non-blocking operations.
func DevQuiet(kc *KernelCtx, dc *DeviceComm) { core.DevQuiet(kc, dc) }

// DevBarrier synchronizes all ranks from device code.
func DevBarrier(kc *KernelCtx, dc *DeviceComm) { core.DevBarrier(kc, dc) }

// DevAllReduce reduces across all ranks from device code.
func DevAllReduce[T Elem](kc *KernelCtx, op ReduceOp, send, recv Ptr[T], count int, dc *DeviceComm) {
	core.DevAllReduce(kc, op, send, recv, count, dc)
}

// DevBroadcast broadcasts from device code.
func DevBroadcast[T Elem](kc *KernelCtx, buf Ptr[T], count, root int, dc *DeviceComm) {
	core.DevBroadcast(kc, buf, count, root, dc)
}

// DevAllGatherv is the device-side variable-size allgather.
func DevAllGatherv[T Elem](kc *KernelCtx, send, recv Ptr[T], counts, displs []int, dc *DeviceComm) {
	core.DevAllGatherv(kc, send, recv, counts, displs, dc)
}
